// Package profiling reproduces the paper's system-profiling methodology
// (§IV-A): estimate every coefficient the optimizer needs by running
// controlled experiments against the (simulated) machine room and fitting
// the measurements with least squares — never by peeking at ground truth.
//
// Four experiments build a core.Profile:
//
//  1. Power model: step the load through fixed levels, dwell at each while
//     sampling the power meters at 1 Hz, then fit P = w1·L + w2 (Fig. 2).
//  2. Thermal model: sweep load × CRAC set point, wait for steady state at
//     each operating point, and fit T_cpu = α·T_ac + β·P + γ per machine
//     (Fig. 3). Load levels are staggered across machines so each P_i
//     varies while the room's total heat stays constant — without the
//     stagger, per-machine power is perfectly collinear with total heat
//     and the room-level recirculation effect corrupts β.
//  3. Cooling cost: across the same sweep (total heat constant by the
//     stagger), fit the CRAC's electrical power as an affine function of
//     the supply temperature, giving the model's c·f_ac slope and
//     effective set point (Eq. 10).
//  4. Set-point calibration: step the total load at a fixed set point and
//     fit the steady offset T_SP − T_ac against total server power, so
//     policies can command a desired supply temperature by choosing the
//     right set point (§IV-B).
package profiling

import (
	"errors"
	"fmt"

	"coolopt/internal/core"
	"coolopt/internal/machineroom"
	"coolopt/internal/mathx"
	"coolopt/internal/sim"
	"coolopt/internal/telemetry"
	"coolopt/internal/units"
)

// Config drives a profiling run. Zero values select the paper's protocol.
type Config struct {
	// Sim is the machine room under test — the in-process simulator or
	// a remote room client.
	Sim machineroom.Room
	// TMaxC is the CPU temperature constraint to bake into the profile.
	TMaxC float64
	// TAcMinC and TAcMaxC are the CRAC's actuation bounds as known to
	// the operator.
	TAcMinC float64
	TAcMaxC float64
	// PowerLoadLevels are the utilization steps of the power experiment
	// (default 0, 0.10, 0.25, 0.50, 0.75 — the paper's protocol).
	PowerLoadLevels []float64
	// PowerDwellS is the dwell per load level in seconds (default 900;
	// the paper uses 15 minutes).
	PowerDwellS float64
	// ThermalLoadLevels and SetPoints define the thermal sweep grid.
	ThermalLoadLevels []float64
	SetPoints         []float64
	// SettleS is the wait for thermal steady state in seconds (default
	// 400; the paper observes stabilization in ≈200 s).
	SettleS float64
	// SmoothAlpha is the low-pass constant applied to meter traces
	// before fitting and plotting (default 0.05).
	SmoothAlpha float64
}

func (c *Config) applyDefaults() error {
	if c.Sim == nil {
		return errors.New("profiling: nil simulator")
	}
	if c.TMaxC == 0 {
		c.TMaxC = sim.DefaultTMaxC
	}
	if c.TAcMinC == 0 && c.TAcMaxC == 0 {
		c.TAcMinC, c.TAcMaxC = 10, 25
	}
	if len(c.PowerLoadLevels) == 0 {
		c.PowerLoadLevels = []float64{0, 0.10, 0.25, 0.50, 0.75}
	}
	if c.PowerDwellS == 0 {
		c.PowerDwellS = 900
	}
	if len(c.ThermalLoadLevels) == 0 {
		c.ThermalLoadLevels = []float64{0, 0.25, 0.50, 0.75, 1}
	}
	if len(c.SetPoints) == 0 {
		c.SetPoints = []float64{20, 22, 24, 26, 28}
	}
	if c.SettleS == 0 {
		c.SettleS = 400
	}
	if c.SmoothAlpha == 0 {
		c.SmoothAlpha = 0.05
	}
	return nil
}

// FitReport carries a fitted model's predictions against the measurements
// that produced it, for the Fig. 2 / Fig. 3 style comparisons.
type FitReport struct {
	// Label names the experiment ("power", "thermal machine 7", …).
	Label string
	// Measured and Predicted are aligned series.
	Measured  []float64
	Predicted []float64
	// RMSE and R2 summarize the fit quality.
	RMSE float64
	R2   float64
}

func newFitReport(label string, measured, predicted []float64) (FitReport, error) {
	rmse, err := mathx.RMSE(predicted, measured)
	if err != nil {
		return FitReport{}, err
	}
	r2, err := mathx.RSquared(predicted, measured)
	if err != nil {
		return FitReport{}, err
	}
	return FitReport{Label: label, Measured: measured, Predicted: predicted, RMSE: rmse, R2: r2}, nil
}

// SetPointCalibration maps a desired supply temperature to the exhaust set
// point that produces it: T_SP = T_ac + offset(Q), with the offset fitted
// as an affine function of total server power Q.
type SetPointCalibration struct {
	// OffsetPerWatt and OffsetBase give offset = OffsetPerWatt·Q + OffsetBase.
	OffsetPerWatt float64 `json:"offsetPerWatt"`
	OffsetBase    float64 `json:"offsetBase"`
}

// SetPointFor returns the exhaust set point commanding the desired supply
// temperature at the predicted total server power.
func (c SetPointCalibration) SetPointFor(desired units.Celsius, serverPower units.Watts) units.Celsius {
	return desired + units.Celsius(c.OffsetPerWatt*float64(serverPower)+c.OffsetBase)
}

// Result is a completed profiling run.
type Result struct {
	// Profile is the fitted model, ready for core.NewOptimizer.
	Profile *core.Profile
	// Calibration maps desired supply temperatures to set points.
	Calibration SetPointCalibration
	// PowerFit is the Fig. 2 comparison (1 Hz samples, smoothed).
	PowerFit FitReport
	// ThermalFits holds one Fig. 3 comparison per machine over the
	// steady-state sweep grid.
	ThermalFits []FitReport
	// CoolingFit compares measured CRAC power against the fitted affine
	// cooling model across the set-point sweep.
	CoolingFit FitReport
}

// Run executes the full profiling protocol.
func Run(cfg Config) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	res := &Result{}

	w1, w2, powerFit, err := profilePower(&cfg)
	if err != nil {
		return nil, fmt.Errorf("profiling: power model: %w", err)
	}
	res.PowerFit = powerFit

	machines, thermalFits, sweep, err := profileThermal(&cfg)
	if err != nil {
		return nil, fmt.Errorf("profiling: thermal model: %w", err)
	}
	res.ThermalFits = thermalFits

	coolFactor, setPointEff, coolingFit, err := fitCooling(sweep)
	if err != nil {
		return nil, fmt.Errorf("profiling: cooling model: %w", err)
	}
	res.CoolingFit = coolingFit

	res.Calibration, err = calibrateSetPoint(&cfg)
	if err != nil {
		return nil, fmt.Errorf("profiling: set-point calibration: %w", err)
	}

	res.Profile = &core.Profile{
		W1:         w1,
		W2:         w2,
		CoolFactor: coolFactor,
		SetPointC:  setPointEff,
		TMaxC:      cfg.TMaxC,
		TAcMinC:    cfg.TAcMinC,
		TAcMaxC:    cfg.TAcMaxC,
		Machines:   machines,
	}
	if err := res.Profile.Validate(); err != nil {
		return nil, fmt.Errorf("profiling: fitted profile invalid: %w", err)
	}
	return res, nil
}

// profilePower runs the load-step experiment and fits Eq. 9. Samples are
// pooled across every machine (identical hardware; pooling washes out the
// per-meter calibration gains, as averaging multiple meters did for the
// authors).
func profilePower(cfg *Config) (w1, w2 float64, report FitReport, err error) {
	s := cfg.Sim
	var loads, watts []float64

	for _, level := range cfg.PowerLoadLevels {
		// The paper idles the machines briefly between levels.
		if err := setAllLoads(s, 0); err != nil {
			return 0, 0, FitReport{}, err
		}
		s.Run(60)
		if err := setAllLoads(s, level); err != nil {
			return 0, 0, FitReport{}, err
		}
		// Skip the thermal/electrical transient, then sample at 1 Hz.
		s.Run(cfg.PowerDwellS * 0.2)
		steps := int(cfg.PowerDwellS * 0.8)
		for t := 0; t < steps; t++ {
			s.Step()
			for i := 0; i < s.Size(); i++ {
				loads = append(loads, level)
				watts = append(watts, s.MeasuredServerPower(i))
			}
		}
	}

	w1, w2, err = mathx.FitLine(loads, watts)
	if err != nil {
		return 0, 0, FitReport{}, err
	}

	// Fig. 2 series: smoothed measurements vs model prediction.
	smoothed, err := mathx.Smooth(watts, cfg.SmoothAlpha)
	if err != nil {
		return 0, 0, FitReport{}, err
	}
	predicted := make([]float64, len(loads))
	for i, l := range loads {
		predicted[i] = w1*l + w2
	}
	report, err = newFitReport("power", smoothed, predicted)
	if err != nil {
		return 0, 0, FitReport{}, err
	}
	return w1, w2, report, nil
}

// operatingPoint is one steady state of the thermal sweep.
type operatingPoint struct {
	setPoint float64
	supplyC  float64   // measured T_ac
	returnC  float64   // measured exhaust temperature
	serverW  float64   // measured total server power
	cracW    float64   // measured CRAC power
	powerW   []float64 // per-machine measured power
	cpuC     []float64 // per-machine measured CPU temperature
}

// tracking reports whether the CRAC loop was actually holding the exhaust
// at the set point for this operating point; points where the supply
// clamped at an actuation bound are excluded from the set-point fits.
func (op operatingPoint) tracking() bool {
	diff := op.returnC - op.setPoint
	if diff < 0 {
		diff = -diff
	}
	return diff < 0.5
}

// profileThermal sweeps set point × staggered load patterns, records
// steady states, and fits Eq. 8 per machine. In pattern r, machine i runs
// at level (i + r) mod len(levels): every machine visits every level while
// the total room heat stays constant, decorrelating per-machine power from
// room-level recirculation. It returns the fitted machine profiles, the
// Fig. 3 reports, and the raw sweep for the cooling fit.
func profileThermal(cfg *Config) ([]core.MachineProfile, []FitReport, []operatingPoint, error) {
	s := cfg.Sim
	n := s.Size()
	var sweep []operatingPoint

	levels := cfg.ThermalLoadLevels
	for _, sp := range cfg.SetPoints {
		s.SetSetPoint(sp)
		for r := range levels {
			for i := 0; i < n; i++ {
				if err := s.SetLoad(i, levels[(i+r)%len(levels)]); err != nil {
					return nil, nil, nil, err
				}
			}
			s.Run(cfg.SettleS)
			op := operatingPoint{
				setPoint: sp,
				supplyC:  s.Supply(),
				returnC:  s.ReturnTemp(),
				powerW:   make([]float64, n),
				cpuC:     make([]float64, n),
			}
			// Average a short window of 1 Hz samples to tame noise.
			const window = 30
			cpuTr := make([]telemetry.Trace, n)
			pwTr := make([]telemetry.Trace, n)
			var cracTr, servTr telemetry.Trace
			for w := 0; w < window; w++ {
				s.Step()
				var serv float64
				for i := 0; i < n; i++ {
					cpuTr[i].Append(s.Time(), s.MeasuredCPUTemp(i))
					p := s.MeasuredServerPower(i)
					pwTr[i].Append(s.Time(), p)
					serv += p
				}
				cracTr.Append(s.Time(), s.MeasuredCRACPower())
				servTr.Append(s.Time(), serv)
			}
			for i := 0; i < n; i++ {
				op.cpuC[i] = cpuTr[i].Tail(window)
				op.powerW[i] = pwTr[i].Tail(window)
			}
			op.cracW = cracTr.Tail(window)
			op.serverW = servTr.Tail(window)
			sweep = append(sweep, op)
		}
	}

	machines := make([]core.MachineProfile, n)
	reports := make([]FitReport, n)
	for i := 0; i < n; i++ {
		design := make([][]float64, len(sweep))
		target := make([]float64, len(sweep))
		for j, op := range sweep {
			design[j] = []float64{op.supplyC, op.powerW[i], 1}
			target[j] = op.cpuC[i]
		}
		beta, err := mathx.LeastSquares(design, target)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("machine %d: %w", i, err)
		}
		machines[i] = core.MachineProfile{Alpha: beta[0], Beta: beta[1], Gamma: beta[2]}

		predicted := make([]float64, len(sweep))
		for j, op := range sweep {
			predicted[j] = beta[0]*op.supplyC + beta[1]*op.powerW[i] + beta[2]
		}
		reports[i], err = newFitReport(fmt.Sprintf("thermal machine %d", i), target, predicted)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return machines, reports, sweep, nil
}

// fitCooling fits the paper's affine cooling model: CRAC electrical power
// against supply temperature. Thanks to the staggered sweep the heat being
// removed is the same at every point, so the set point moves only the
// supply temperature. The slope gives c·f_ac and the zero crossing the
// effective set-point constant, so CoolFactor·(T_SP − T_ac) tracks the
// measured CRAC draw around the operating region.
func fitCooling(sweep []operatingPoint) (coolFactor, setPointEff float64, report FitReport, err error) {
	var xs, ys []float64
	for _, op := range sweep {
		xs = append(xs, op.supplyC)
		ys = append(ys, op.cracW)
	}
	if len(xs) < 2 {
		return 0, 0, FitReport{}, errors.New("not enough operating points")
	}
	slope, intercept, err := mathx.FitLine(xs, ys)
	if err != nil {
		return 0, 0, FitReport{}, err
	}
	if slope >= 0 {
		return 0, 0, FitReport{}, fmt.Errorf("cooling power rises with supply temperature (slope %v)", slope)
	}
	coolFactor = -slope
	setPointEff = intercept / coolFactor

	predicted := make([]float64, len(xs))
	for i := range xs {
		predicted[i] = coolFactor * (setPointEff - xs[i])
	}
	report, err = newFitReport("cooling", ys, predicted)
	if err != nil {
		return 0, 0, FitReport{}, err
	}
	return coolFactor, setPointEff, report, nil
}

// calibrateSetPoint steps the total load uniformly at the default set
// point and fits T_SP − T_ac as an affine function of total server power.
func calibrateSetPoint(cfg *Config) (SetPointCalibration, error) {
	s := cfg.Sim
	s.SetSetPoint(sim.DefaultSetPointC)
	var xs, ys []float64
	for _, level := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		if err := setAllLoads(s, level); err != nil {
			return SetPointCalibration{}, err
		}
		s.Run(cfg.SettleS)
		var servTr telemetry.Trace
		const window = 30
		for w := 0; w < window; w++ {
			s.Step()
			var serv float64
			for i := 0; i < s.Size(); i++ {
				serv += s.MeasuredServerPower(i)
			}
			servTr.Append(s.Time(), serv)
		}
		op := operatingPoint{
			setPoint: s.SetPoint(),
			supplyC:  s.Supply(),
			returnC:  s.ReturnTemp(),
		}
		if !op.tracking() {
			continue // supply clamped; not a usable calibration point
		}
		xs = append(xs, servTr.Tail(window))
		ys = append(ys, op.setPoint-op.supplyC)
	}
	if len(xs) < 2 {
		return SetPointCalibration{}, errors.New("no tracking operating points for calibration")
	}
	slope, intercept, err := mathx.FitLine(xs, ys)
	if err != nil {
		return SetPointCalibration{}, err
	}
	return SetPointCalibration{OffsetPerWatt: slope, OffsetBase: intercept}, nil
}

func setAllLoads(s machineroom.Room, level float64) error {
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, level); err != nil {
			return err
		}
	}
	return nil
}
