package profiling

import (
	"bytes"
	"strings"
	"testing"

	"coolopt/internal/core"
	"coolopt/internal/mathx"
)

func docProfile() *core.Profile {
	return &core.Profile{
		W1: 50, W2: 35, CoolFactor: 70, SetPointC: 30,
		TMaxC: 58, TAcMinC: 8, TAcMaxC: 25,
		Machines: []core.MachineProfile{
			{Alpha: 0.96, Beta: 0.44, Gamma: 1.2},
			{Alpha: 0.80, Beta: 0.48, Gamma: 6.0},
		},
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	doc := Document{
		Profile:     docProfile(),
		Calibration: SetPointCalibration{OffsetPerWatt: 0.003, OffsetBase: 0.05},
	}
	var buf bytes.Buffer
	if err := WriteDocument(&buf, doc); err != nil {
		t.Fatalf("WriteDocument: %v", err)
	}
	got, err := ReadDocument(&buf)
	if err != nil {
		t.Fatalf("ReadDocument: %v", err)
	}
	if !mathx.ApproxEqual(got.Profile.W1, 50, 1e-12) ||
		len(got.Profile.Machines) != 2 ||
		!mathx.ApproxEqual(got.Calibration.OffsetPerWatt, 0.003, 1e-12) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteDocumentRejectsInvalid(t *testing.T) {
	if err := WriteDocument(&bytes.Buffer{}, Document{}); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad := docProfile()
	bad.W1 = -1
	if err := WriteDocument(&bytes.Buffer{}, Document{Profile: bad}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestReadDocumentRejectsGarbage(t *testing.T) {
	if _, err := ReadDocument(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadDocument(strings.NewReader(`{}`)); err == nil {
		t.Fatal("empty document accepted")
	}
	if _, err := ReadDocument(strings.NewReader(`{"profile":{"w1":-1}}`)); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestResultDocument(t *testing.T) {
	res := &Result{Profile: docProfile(), Calibration: SetPointCalibration{OffsetBase: 1}}
	doc := res.Document()
	if doc.Profile != res.Profile || doc.Calibration != res.Calibration {
		t.Fatal("Document did not carry fields")
	}
}
