package profiling

import (
	"math"
	"testing"

	"coolopt/internal/core"
	"coolopt/internal/mathx"
)

// plant generates a noiseless Eq. 8 read for the given coefficients.
func plant(m core.MachineProfile, supplyC, powerW float64) float64 {
	return m.Alpha*supplyC + m.Beta*powerW + m.Gamma
}

func TestCoeffRLSRecoversPlant(t *testing.T) {
	truth := core.MachineProfile{Alpha: 1.02, Beta: 0.47, Gamma: 1.8}
	r := NewCoeffRLS(1) // no forgetting: converges to the batch LS fit
	rng := mathx.NewRand(4)
	for i := 0; i < 400; i++ {
		s := rng.Uniform(14, 24)
		p := rng.Uniform(60, 140)
		r.Observe(s, p, plant(truth, s, p))
	}
	got := r.Coeffs()
	// The large-but-finite initial covariance acts as a weak zero prior,
	// so recovery is exact only to ~1e-5.
	if math.Abs(got.Alpha-truth.Alpha) > 1e-4 ||
		math.Abs(got.Beta-truth.Beta) > 1e-4 ||
		math.Abs(got.Gamma-truth.Gamma) > 1e-3 {
		t.Fatalf("recovered %+v, want %+v", got, truth)
	}
	if !r.Conditioned(0.5, 5) {
		t.Fatal("well-excited fit reported unconditioned")
	}
	if r.Samples() != 400 {
		t.Fatalf("samples = %d", r.Samples())
	}
}

func TestCoeffRLSTracksDrift(t *testing.T) {
	before := core.MachineProfile{Alpha: 1.0, Beta: 0.46, Gamma: 1.0}
	after := core.MachineProfile{Alpha: 1.0, Beta: 0.55, Gamma: 0.4}
	r := NewCoeffRLS(0.97)
	rng := mathx.NewRand(7)
	for i := 0; i < 300; i++ {
		s := rng.Uniform(14, 24)
		p := rng.Uniform(60, 140)
		r.Observe(s, p, plant(before, s, p))
	}
	for i := 0; i < 300; i++ {
		s := rng.Uniform(14, 24)
		p := rng.Uniform(60, 140)
		r.Observe(s, p, plant(after, s, p))
	}
	got := r.Coeffs()
	if math.Abs(got.Beta-after.Beta) > 0.01 || math.Abs(got.Gamma-after.Gamma) > 0.1 {
		t.Fatalf("forgetting fit stuck at %+v, want ≈%+v", got, after)
	}
}

func TestCoeffRLSConditioningGuard(t *testing.T) {
	truth := core.MachineProfile{Alpha: 1.0, Beta: 0.46, Gamma: 1.0}
	r := NewCoeffRLS(0)
	for i := 0; i < 200; i++ {
		// Supply pinned: α and γ are inseparable no matter the sample count.
		r.Observe(18, 60+float64(i%40), plant(truth, 18, 60+float64(i%40)))
	}
	if r.Conditioned(0.5, 5) {
		t.Fatal("supply-pinned fit reported conditioned")
	}
	if !r.Conditioned(0, 5) {
		t.Fatal("power spread not tracked")
	}
}

// fakeRoom is a minimal deterministic Room for refresher tests: sensors
// replay an Eq. 8 plant with per-machine coefficients the test mutates.
type fakeRoom struct {
	machines []core.MachineProfile
	supplyC  float64
	powerW   []float64
	off      map[int]bool
	time     float64
}

func newFakeRoom(machines []core.MachineProfile) *fakeRoom {
	powers := make([]float64, len(machines))
	for i := range powers {
		powers[i] = 80
	}
	return &fakeRoom{machines: machines, supplyC: 18, powerW: powers, off: map[int]bool{}}
}

func (f *fakeRoom) Size() int                  { return len(f.machines) }
func (f *fakeRoom) Time() float64              { return f.time }
func (f *fakeRoom) SetLoad(int, float64) error { return nil }
func (f *fakeRoom) SetPower(i int, on bool) error {
	f.off[i] = !on
	return nil
}
func (f *fakeRoom) IsOn(i int) bool            { return !f.off[i] }
func (f *fakeRoom) SetSetPoint(float64)        {}
func (f *fakeRoom) SetPoint() float64          { return f.supplyC }
func (f *fakeRoom) Supply() float64            { return f.supplyC }
func (f *fakeRoom) ReturnTemp() float64        { return f.supplyC + 10 }
func (f *fakeRoom) MeasuredCRACPower() float64 { return 1000 }
func (f *fakeRoom) Step()                      { f.time++ }
func (f *fakeRoom) Run(s float64)              { f.time += s }

func (f *fakeRoom) MeasuredServerPower(i int) float64 { return f.powerW[i] }
func (f *fakeRoom) MeasuredCPUTemp(i int) float64 {
	return plant(f.machines[i], f.supplyC, f.powerW[i])
}

// excite sweeps the fake room's supply and power through enough spread to
// satisfy the conditioning guard while the refresher samples.
func excite(rf *Refresher, room *fakeRoom, samples int) {
	for s := 0; s < samples; s++ {
		room.supplyC = 16 + 6*float64(s%8)/7
		for i := range room.powerW {
			room.powerW[i] = 70 + 30*float64((s+i)%10)/9
		}
		rf.Observe()
	}
}

func refProfile(n int) *core.Profile {
	machines := make([]core.MachineProfile, n)
	for i := range machines {
		machines[i] = core.MachineProfile{Alpha: 1.0, Beta: 0.46, Gamma: 1.0}
	}
	return &core.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func TestRefresherEmitsOnlyDriftedMachines(t *testing.T) {
	const n = 6
	ref := refProfile(n)
	room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
	// Machines 2 and 4 drift; the rest still match the reference.
	room.machines[2].Beta = 0.52
	room.machines[4].Gamma = 2.1

	rf, err := NewRefresher(RefreshConfig{Room: room, Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	excite(rf, room, 100)
	batch := rf.Drifted()
	if len(batch) != 2 || batch[0].ID != 2 || batch[1].ID != 4 {
		t.Fatalf("drift batch %+v, want machines 2 and 4", batch)
	}
	if math.Abs(batch[0].Machine.Beta-0.52) > 1e-6 {
		t.Fatalf("machine 2 beta = %v, want ≈0.52", batch[0].Machine.Beta)
	}
	// Reference advanced on emission: the same drift is not re-emitted.
	excite(rf, room, 50)
	if again := rf.Drifted(); len(again) != 0 {
		t.Fatalf("re-emitted settled drift: %+v", again)
	}
}

func TestRefresherConditioningGuard(t *testing.T) {
	const n = 3
	ref := refProfile(n)
	room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
	room.machines[0].Beta = 0.6 // real drift, but unexcited sensors

	rf, err := NewRefresher(RefreshConfig{Room: room, Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 200; s++ {
		rf.Observe() // supply and power pinned: no spread
	}
	if batch := rf.Drifted(); len(batch) != 0 {
		t.Fatalf("unconditioned fit emitted %+v", batch)
	}
}

func TestRefresherMinSamplesAndOffMachines(t *testing.T) {
	const n = 3
	ref := refProfile(n)
	room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
	room.machines[1].Beta = 0.6
	if err := room.SetPower(1, false); err != nil {
		t.Fatal(err)
	}

	rf, err := NewRefresher(RefreshConfig{Room: room, Reference: ref, MinSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	excite(rf, room, 16)
	if batch := rf.Drifted(); len(batch) != 0 {
		t.Fatalf("under-sampled fit emitted %+v", batch)
	}
	excite(rf, room, 200)
	// Machine 1 is powered off: it never samples, so its drift stays
	// invisible, and no other machine drifted.
	if batch := rf.Drifted(); len(batch) != 0 {
		t.Fatalf("powered-off machine emitted %+v", batch)
	}
}

func TestRefresherHoldsBackInvalidFits(t *testing.T) {
	const n = 2
	ref := refProfile(n)
	room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
	room.machines[0].Beta = -0.2 // a plant no valid profile can express

	rf, err := NewRefresher(RefreshConfig{Room: room, Reference: ref})
	if err != nil {
		t.Fatal(err)
	}
	excite(rf, room, 120)
	for _, d := range rf.Drifted() {
		if d.ID == 0 {
			t.Fatalf("invalid fit emitted: %+v", d)
		}
	}
}

func TestNewRefresherValidation(t *testing.T) {
	ref := refProfile(2)
	room := newFakeRoom(append([]core.MachineProfile(nil), refProfile(3).Machines...))
	if _, err := NewRefresher(RefreshConfig{Room: room, Reference: ref}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewRefresher(RefreshConfig{Reference: ref}); err == nil {
		t.Fatal("nil room accepted")
	}
	if _, err := NewRefresher(RefreshConfig{Room: room}); err == nil {
		t.Fatal("nil reference accepted")
	}
}
