package profiling

import (
	"math"
	"testing"

	"coolopt/internal/core"
)

// TestPowerRLSRecoversPlant: with no forgetting the pooled estimator
// must converge to the batch least-squares fit of a noiseless Eq. 9
// plant, and the excitation guard must see the utilization spread.
func TestPowerRLSRecoversPlant(t *testing.T) {
	const w1, w2 = 52.0, 34.0
	r := NewPowerRLS(1)
	for s := 0; s < 300; s++ {
		u := float64(s%10) / 9
		r.Observe(u, w1*u+w2)
	}
	gw1, gw2 := r.Coeffs()
	// The large-but-finite initial covariance acts as a weak zero prior,
	// so recovery is exact only to ~1e-4 relative.
	if math.Abs(gw1-w1) > 1e-2 || math.Abs(gw2-w2) > 1e-2 {
		t.Fatalf("recovered (%v, %v), want (%v, %v)", gw1, gw2, w1, w2)
	}
	if !r.Conditioned(0.2) {
		t.Fatal("full-spread fit reported unconditioned")
	}
	if r.Samples() != 300 {
		t.Fatalf("samples = %d", r.Samples())
	}

	// Utilization pinned: slope and floor are inseparable.
	flat := NewPowerRLS(1)
	for s := 0; s < 300; s++ {
		flat.Observe(0.5, w1*0.5+w2)
	}
	if flat.Conditioned(0.2) {
		t.Fatal("pinned-utilization fit reported conditioned")
	}
}

// excitePower drives the fake room with a swept utilization column and a
// consistent Eq. 9 power plant (metered power and the thermal plant's
// power input agree), sweeping supply for the thermal guard too.
func excitePower(rf *Refresher, room *fakeRoom, utils []float64, w1, w2 float64, samples int) {
	for s := 0; s < samples; s++ {
		room.supplyC = 16 + 6*float64(s%8)/7
		for i := range room.powerW {
			utils[i] = float64((s+i)%10) / 9
			room.powerW[i] = w1*utils[i] + w2
		}
		rf.Observe()
	}
}

// TestRefresherPowerOnlyDriftCarrier: a drifted room power model with
// settled thermal fits must come out as exactly one carrier delta —
// machine 0's reference coefficients restated, W1/W2 attached — and the
// advanced reference must stop re-emission.
func TestRefresherPowerOnlyDriftCarrier(t *testing.T) {
	const n = 4
	const newW1, newW2 = 58.0, 30.0
	ref := refProfile(n)
	room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
	utils := make([]float64, n)

	rf, err := NewRefresher(RefreshConfig{
		Room: room, Reference: ref,
		Loads: func(i int) float64 { return utils[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	excitePower(rf, room, utils, newW1, newW2, 120)
	batch := rf.Drifted()
	if len(batch) != 1 || batch[0].ID != 0 {
		t.Fatalf("drift batch %+v, want a single machine-0 carrier", batch)
	}
	if !core.PowerDrift(batch) {
		t.Fatal("carrier batch does not report power drift")
	}
	if math.Abs(batch[0].W1-newW1) > 1e-3 || math.Abs(batch[0].W2-newW2) > 1e-3 {
		t.Fatalf("carried (%v, %v), want ≈(%v, %v)", batch[0].W1, batch[0].W2, newW1, newW2)
	}
	if batch[0].Machine != ref.Machines[0] {
		t.Fatalf("carrier restates %+v, want the reference coefficients", batch[0].Machine)
	}
	excitePower(rf, room, utils, newW1, newW2, 60)
	if again := rf.Drifted(); len(again) != 0 {
		t.Fatalf("re-emitted settled power drift: %+v", again)
	}
}

// TestRefresherCombinedThermalPowerDrift: thermal and power drift in the
// same window ride one batch — the power coefficients piggyback on the
// first thermal delta instead of a fabricated carrier.
func TestRefresherCombinedThermalPowerDrift(t *testing.T) {
	const n = 5
	const newW1, newW2 = 56.0, 31.0
	ref := refProfile(n)
	room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
	room.machines[2].Beta = 0.53
	utils := make([]float64, n)

	rf, err := NewRefresher(RefreshConfig{
		Room: room, Reference: ref,
		Loads: func(i int) float64 { return utils[i] },
	})
	if err != nil {
		t.Fatal(err)
	}
	excitePower(rf, room, utils, newW1, newW2, 120)
	batch := rf.Drifted()
	if len(batch) != 1 || batch[0].ID != 2 {
		t.Fatalf("drift batch %+v, want machine 2 only", batch)
	}
	if math.Abs(batch[0].Machine.Beta-0.53) > 1e-5 {
		t.Fatalf("machine 2 beta = %v, want ≈0.53", batch[0].Machine.Beta)
	}
	if !core.PowerDrift(batch) || math.Abs(batch[0].W1-newW1) > 1e-3 {
		t.Fatalf("power drift not attached to the thermal delta: %+v", batch[0])
	}
}

// TestRefresherPowerGuards pins the hold-back conditions: pinned
// utilization, too few samples, and fits outside the valid coefficient
// range must all suppress power emission no matter how far the plant
// drifted.
func TestRefresherPowerGuards(t *testing.T) {
	const n = 3
	newRF := func(room *fakeRoom, utils []float64, minSamples int) *Refresher {
		t.Helper()
		rf, err := NewRefresher(RefreshConfig{
			Room: room, Reference: refProfile(n), MinSamples: minSamples,
			Loads: func(i int) float64 { return utils[i] },
		})
		if err != nil {
			t.Fatal(err)
		}
		return rf
	}

	t.Run("pinned utilization", func(t *testing.T) {
		ref := refProfile(n)
		room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
		utils := make([]float64, n)
		rf := newRF(room, utils, 0)
		for s := 0; s < 200; s++ {
			room.supplyC = 16 + 6*float64(s%8)/7
			for i := range room.powerW {
				utils[i] = 0.5
				room.powerW[i] = 58*0.5 + 30 // drifted plant, zero spread
			}
			rf.Observe()
		}
		if batch := rf.Drifted(); core.PowerDrift(batch) {
			t.Fatalf("unconditioned power fit emitted %+v", batch)
		}
	})

	t.Run("under-sampled", func(t *testing.T) {
		ref := refProfile(n)
		room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
		utils := make([]float64, n)
		rf := newRF(room, utils, 512)
		excitePower(rf, room, utils, 58, 30, 20)
		if batch := rf.Drifted(); core.PowerDrift(batch) {
			t.Fatalf("under-sampled power fit emitted %+v", batch)
		}
	})

	t.Run("invalid slope", func(t *testing.T) {
		ref := refProfile(n)
		room := newFakeRoom(append([]core.MachineProfile(nil), ref.Machines...))
		utils := make([]float64, n)
		rf := newRF(room, utils, 0)
		// A plant no valid profile can express: power falls as load rises.
		excitePower(rf, room, utils, -10, 120, 120)
		if batch := rf.Drifted(); core.PowerDrift(batch) {
			t.Fatalf("negative-slope power fit emitted %+v", batch)
		}
	})
}
