package profiling

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"coolopt/internal/core"
)

// Document is the serializable outcome of a profiling run: everything a
// later process needs to plan against the room (the fitted profile and
// the set-point calibration), without the bulky fit traces.
type Document struct {
	Profile     *core.Profile       `json:"profile"`
	Calibration SetPointCalibration `json:"calibration"`
}

// Document extracts the serializable part of the result.
func (r *Result) Document() Document {
	return Document{Profile: r.Profile, Calibration: r.Calibration}
}

// WriteDocument writes the document as indented JSON.
func WriteDocument(w io.Writer, doc Document) error {
	if doc.Profile == nil {
		return errors.New("profiling: document has no profile")
	}
	if err := doc.Profile.Validate(); err != nil {
		return fmt.Errorf("profiling: refusing to write invalid profile: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadDocument parses and validates a document.
func ReadDocument(r io.Reader) (Document, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return Document{}, fmt.Errorf("profiling: decode document: %w", err)
	}
	if doc.Profile == nil {
		return Document{}, errors.New("profiling: document has no profile")
	}
	if err := doc.Profile.Validate(); err != nil {
		return Document{}, fmt.Errorf("profiling: document profile invalid: %w", err)
	}
	return doc, nil
}
