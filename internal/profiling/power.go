package profiling

import "math"

// This file is the power half of the online re-profiler: Eq. 8 has two
// ingredients, the per-machine thermal fits (rls.go) and the room power
// model P_i = W1·u_i + W2 (Eq. 9). The thermal refresher alone leaves
// the power model frozen at its batch fit, so a room whose servers age
// (fan degradation, PSU efficiency loss) drifts the planner's K_i
// without any patch noticing. PowerRLS pools (utilization, metered
// power) samples across all machines — the paper fits one shared W1/W2,
// so pooling is the faithful estimator and converges n× faster than
// per-machine fits — and the Refresher attaches the drifted coefficients
// to its delta batches (core.MachineDelta.W1/W2), which forces the full
// table rebuild power drift requires (every particle moves).

// PowerRLS is a 2-parameter recursive least-squares estimator for the
// room power model P = W1·u + W2, with exponential forgetting. The
// design row is x = [u, 1] and the target is the metered machine power —
// the same regression the batch profiling protocol runs, so with λ = 1
// and no drift the two agree.
type PowerRLS struct {
	lambda float64
	theta  [2]float64    // [W1, W2]
	p      [2][2]float64 // covariance
	count  int

	// Excitation tracking: samples that never varied utilization cannot
	// separate the slope from the idle floor.
	minU, maxU float64
}

// NewPowerRLS builds an estimator with forgetting factor lambda; values
// outside (0, 1] fall back to DefaultForgetting.
func NewPowerRLS(lambda float64) *PowerRLS {
	if lambda <= 0 || lambda > 1 {
		lambda = DefaultForgetting
	}
	r := &PowerRLS{lambda: lambda}
	for i := 0; i < 2; i++ {
		r.p[i][i] = rlsInitVar
	}
	return r
}

// Observe folds one (utilization, metered power) sample into the
// estimate. Utilization is in machine units (0 = idle, 1 = fully busy).
func (r *PowerRLS) Observe(util, powerW float64) {
	if r.count == 0 {
		r.minU, r.maxU = util, util
	} else {
		r.minU = math.Min(r.minU, util)
		r.maxU = math.Max(r.maxU, util)
	}
	r.count++

	x := [2]float64{util, 1}
	var px [2]float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			px[i] += r.p[i][j] * x[j]
		}
	}
	denom := r.lambda
	for i := 0; i < 2; i++ {
		denom += x[i] * px[i]
	}
	var k [2]float64
	for i := 0; i < 2; i++ {
		k[i] = px[i] / denom
	}
	residual := powerW
	for i := 0; i < 2; i++ {
		residual -= r.theta[i] * x[i]
	}
	for i := 0; i < 2; i++ {
		r.theta[i] += k[i] * residual
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r.p[i][j] = (r.p[i][j] - k[i]*px[j]) / r.lambda
		}
	}
}

// Samples returns the number of samples folded in so far.
func (r *PowerRLS) Samples() int { return r.count }

// Conditioned reports whether the observed utilizations spread at least
// minUtilSpread — without that much excitation the regression cannot
// separate W1 from W2.
func (r *PowerRLS) Conditioned(minUtilSpread float64) bool {
	return r.count > 0 && r.maxU-r.minU >= minUtilSpread
}

// Coeffs returns the current (W1, W2) estimate.
func (r *PowerRLS) Coeffs() (w1, w2 float64) { return r.theta[0], r.theta[1] }
