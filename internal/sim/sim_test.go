package sim

import (
	"math"
	"testing"

	"coolopt/internal/room"
)

func newTestSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := NewDefault(1)
	if err != nil {
		t.Fatalf("NewDefault: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil rack accepted")
	}
	rack, err := room.GenRack(room.DefaultRackSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Rack: rack, CRAC: DefaultCRAC(), DT: 100}); err == nil {
		t.Fatal("huge dt accepted")
	}
	bad := DefaultCRAC()
	bad.Flow = 0
	if _, err := New(Config{Rack: rack, CRAC: bad}); err == nil {
		t.Fatal("bad CRAC accepted")
	}
}

func TestSetLoadValidation(t *testing.T) {
	s := newTestSim(t)
	if err := s.SetLoad(0, 0.5); err != nil {
		t.Fatalf("SetLoad: %v", err)
	}
	if err := s.SetLoad(-1, 0.5); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := s.SetLoad(0, 1.5); err == nil {
		t.Fatal("overload accepted")
	}
	if err := s.SetPower(3, false); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLoad(3, 0.5); err == nil {
		t.Fatal("load on powered-off machine accepted")
	}
	if err := s.SetLoads(make([]float64, 3)); err == nil {
		t.Fatal("short load vector accepted")
	}
}

func TestPowerOffDropsLoad(t *testing.T) {
	s := newTestSim(t)
	if err := s.SetLoad(2, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPower(2, false); err != nil {
		t.Fatal(err)
	}
	if got := s.Load(2); got != 0 {
		t.Fatalf("load after power-off = %v, want 0", got)
	}
	if s.IsOn(2) {
		t.Fatal("machine still reported on")
	}
}

func TestIdleRoomSettles(t *testing.T) {
	s := newTestSim(t)
	settled, err := s.RunUntilSettled(4000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatal("idle room never settled")
	}
	// Idle draw: 20 machines near their idle power plus CRAC fan and a
	// modest heat-removal term.
	total := s.TrueTotalPower()
	if total < 600 || total > 2500 {
		t.Fatalf("idle total power = %v W, outside sanity band", total)
	}
}

func TestLoadRaisesPowerAndTemperature(t *testing.T) {
	s := newTestSim(t)
	s.Run(1500)
	idlePower := s.TrueTotalPower()
	idleTemp := s.TrueCPUTemp(0)

	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(1500)
	if s.TrueTotalPower() <= idlePower {
		t.Fatalf("full-load power %v ≤ idle %v", s.TrueTotalPower(), idlePower)
	}
	if s.TrueCPUTemp(0) <= idleTemp {
		t.Fatalf("full-load CPU temp %v ≤ idle %v", s.TrueCPUTemp(0), idleTemp)
	}
}

func TestExhaustTracksSetPoint(t *testing.T) {
	s := newTestSim(t)
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(4000)
	if math.Abs(s.ReturnTemp()-s.SetPoint()) > 0.3 {
		t.Fatalf("return temp %v far from set point %v", s.ReturnTemp(), s.SetPoint())
	}
}

func TestRaisingSetPointRaisesSupplyAndCutsCoolingPower(t *testing.T) {
	s := newTestSim(t)
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(4000)
	lowSupply := s.Supply()
	lowCool := s.TrueCRACPower()

	s.SetSetPoint(s.SetPoint() + 2)
	s.Run(4000)
	if s.Supply() <= lowSupply {
		t.Fatalf("supply %v did not rise after set point increase (was %v)", s.Supply(), lowSupply)
	}
	if s.TrueCRACPower() >= lowCool {
		t.Fatalf("cooling power %v did not fall after set point increase (was %v)", s.TrueCRACPower(), lowCool)
	}
}

func TestBottomMachinesRunCooler(t *testing.T) {
	s := newTestSim(t)
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.7); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(3000)
	bottom := (s.TrueCPUTemp(0) + s.TrueCPUTemp(1) + s.TrueCPUTemp(2)) / 3
	top := (s.TrueCPUTemp(17) + s.TrueCPUTemp(18) + s.TrueCPUTemp(19)) / 3
	if bottom >= top {
		t.Fatalf("bottom avg %v °C not cooler than top avg %v °C", bottom, top)
	}
}

func TestPoweredOffMachineDrawsStandby(t *testing.T) {
	s := newTestSim(t)
	if err := s.SetPower(5, false); err != nil {
		t.Fatal(err)
	}
	s.Run(600)
	if w := s.TrueServerPower(5); w > 5 {
		t.Fatalf("off machine draws %v W", w)
	}
	// And it must cool toward the room rather than stay hot.
	if s.TrueCPUTemp(5) > s.ReturnTemp()+5 {
		t.Fatalf("off machine stuck hot at %v °C (return %v)", s.TrueCPUTemp(5), s.ReturnTemp())
	}
}

func TestMeasurementsTrackTruth(t *testing.T) {
	s := newTestSim(t)
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2000)
	// Average many noisy samples; they must agree with truth closely.
	var tempSum, powerSum float64
	const samples = 200
	for k := 0; k < samples; k++ {
		tempSum += s.MeasuredCPUTemp(4)
		powerSum += s.MeasuredServerPower(4)
	}
	if diff := math.Abs(tempSum/samples - s.TrueCPUTemp(4)); diff > 1.0 {
		t.Fatalf("mean measured temp off by %v °C", diff)
	}
	truth := s.TrueServerPower(4)
	if diff := math.Abs(powerSum/samples - truth); diff > 0.03*truth+1 {
		t.Fatalf("mean measured power off by %v W (truth %v)", diff, truth)
	}
}

func TestTotalPowerDecomposition(t *testing.T) {
	s := newTestSim(t)
	s.Run(100)
	want := s.TrueCRACPower() + s.TrueServerPowerSum()
	if got := s.TrueTotalPower(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TrueTotalPower = %v, want %v", got, want)
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	a := newTestSim(t)
	b := newTestSim(t)
	for _, s := range []*Simulator{a, b} {
		for i := 0; i < s.Size(); i++ {
			if err := s.SetLoad(i, 0.42); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(500)
	}
	if a.TrueTotalPower() != b.TrueTotalPower() {
		t.Fatalf("same seed diverged: %v vs %v", a.TrueTotalPower(), b.TrueTotalPower())
	}
	if a.MeasuredCPUTemp(7) != b.MeasuredCPUTemp(7) {
		t.Fatal("sensor streams diverged across identical seeds")
	}
}

func TestCloneIndependentAndDeterministic(t *testing.T) {
	parent := newTestSim(t)
	for i := 0; i < parent.Size(); i++ {
		if err := parent.SetLoad(i, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	parent.Run(200)
	snapshot := parent.TrueTotalPower()

	a := parent.Clone(99)
	b := parent.Clone(99)
	if a.TrueTotalPower() != snapshot {
		t.Fatalf("clone power %v, parent %v", a.TrueTotalPower(), snapshot)
	}
	a.Run(300)
	b.Run(300)
	if a.TrueTotalPower() != b.TrueTotalPower() {
		t.Fatalf("same-seed clones diverged: %v vs %v", a.TrueTotalPower(), b.TrueTotalPower())
	}
	if a.MeasuredServerPower(3) != b.MeasuredServerPower(3) {
		t.Fatal("clone sensor streams diverged across identical seeds")
	}
	// Stepping the clones must not have touched the parent.
	if parent.TrueTotalPower() != snapshot {
		t.Fatalf("cloning/stepping mutated the parent: %v vs %v", parent.TrueTotalPower(), snapshot)
	}
	if parent.Time() == a.Time() {
		t.Fatal("clone did not advance independently")
	}
}

func TestMaxTrueCPUTempIgnoresOffMachines(t *testing.T) {
	s := newTestSim(t)
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(2000)
	before := s.MaxTrueCPUTemp()
	// Find the hottest machine and switch it off; the max must not rise.
	hottest, hotT := 0, -1e9
	for i := 0; i < s.Size(); i++ {
		if temp := s.TrueCPUTemp(i); temp > hotT {
			hottest, hotT = i, temp
		}
	}
	if err := s.SetPower(hottest, false); err != nil {
		t.Fatal(err)
	}
	s.Run(500)
	if s.MaxTrueCPUTemp() > before+0.5 {
		t.Fatalf("max temp rose from %v to %v after removing hottest", before, s.MaxTrueCPUTemp())
	}
}

func TestBootTransient(t *testing.T) {
	s := newTestSim(t)
	if err := s.SetPower(4, false); err != nil {
		t.Fatal(err)
	}
	s.Run(120)
	if err := s.SetPower(4, true); err != nil {
		t.Fatal(err)
	}
	if !s.IsBooting(4) {
		t.Fatal("machine not booting after power-on")
	}
	// Load assigned during boot queues rather than erroring.
	if err := s.SetLoad(4, 0.8); err != nil {
		t.Fatalf("SetLoad during boot: %v", err)
	}
	s.Run(10)
	if got := s.Load(4); got != 0 {
		t.Fatalf("load served during boot: %v", got)
	}
	s.Run(120) // past the 60 s boot
	if s.IsBooting(4) {
		t.Fatal("machine still booting after 130 s")
	}
	if got := s.Load(4); got != 0.8 {
		t.Fatalf("queued load not applied: %v", got)
	}
}

func TestRepeatedPowerOnDoesNotReboot(t *testing.T) {
	s := newTestSim(t)
	if err := s.SetPower(2, true); err != nil { // already on
		t.Fatal(err)
	}
	if s.IsBooting(2) {
		t.Fatal("already-on machine rebooted")
	}
}

func TestPowerOffDuringBootClearsState(t *testing.T) {
	s := newTestSim(t)
	if err := s.SetPower(6, false); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if err := s.SetPower(6, true); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLoad(6, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPower(6, false); err != nil {
		t.Fatal(err)
	}
	s.Run(120)
	if s.IsBooting(6) || s.Load(6) != 0 {
		t.Fatal("power-off during boot left residue")
	}
	// Powering back on boots again and serves nothing until done.
	if err := s.SetPower(6, true); err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	if got := s.Load(6); got != 0 {
		t.Fatalf("stale queued load reappeared: %v", got)
	}
}

func TestEnergyConservationAtSteadyState(t *testing.T) {
	// Physics check: once settled, the heat the CRAC removes must match
	// the heat entering the air — server draw plus the room's base heat
	// — to within the lumped model's recirculation approximation.
	s := newTestSim(t)
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.6); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(5000)
	crac := DefaultCRAC()
	removed := crac.CAir * crac.Flow * (s.ReturnTemp() - s.Supply())
	generated := s.TrueServerPowerSum() + DefaultBaseHeatW
	if rel := math.Abs(removed-generated) / generated; rel > 0.05 {
		t.Fatalf("energy imbalance: removed %.0f W vs generated %.0f W (%.1f%%)",
			removed, generated, rel*100)
	}
}
