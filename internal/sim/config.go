package sim

import (
	"coolopt/internal/cooling"
	"coolopt/internal/room"
)

// DefaultCRAC returns the cooling-unit parameters used for the paper's
// testbed reproduction: an aging room-scale chilled-water CRAC serving
// one rack (0.3 m³/s air — the 20 machines pull ≈0.2 m³/s, the rest
// bypasses) with a 250 W blower. Its COP curve is half the modern
// reference curve, reflecting the machine-room-class Liebert units of the
// paper's era, where cooling rivals compute in the total bill.
func DefaultCRAC() cooling.Params {
	return cooling.Params{
		Flow:      0.3,
		CAir:      1200,
		COP:       cooling.COP{A: cooling.DefaultCOP.A / 2, B: cooling.DefaultCOP.B / 2, C: cooling.DefaultCOP.C / 2},
		FanW:      250,
		SupplyMin: 10,
		SupplyMax: 25,
		Gain:      0.02,
	}
}

// DefaultBaseHeatW is the non-server heat load in the default room:
// lights, network gear, UPS losses.
const DefaultBaseHeatW = 600.0

// DefaultSetPointC is the initial CRAC exhaust set point in °C.
const DefaultSetPointC = 24.0

// DefaultTMaxC is the CPU temperature constraint used across the
// reproduction, matching a conservative vendor limit for 1U machines.
const DefaultTMaxC = 65.0

// NewDefault builds the 20-machine testbed simulator with the given seed.
func NewDefault(seed int64) (*Simulator, error) {
	spec := room.DefaultRackSpec()
	spec.Seed = seed
	rack, err := room.GenRack(spec)
	if err != nil {
		return nil, err
	}
	return New(Config{
		Rack:      rack,
		CRAC:      DefaultCRAC(),
		SetPointC: DefaultSetPointC,
		Seed:      seed + 1,
		BaseHeatW: DefaultBaseHeatW,
	})
}
