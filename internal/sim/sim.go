// Package sim is the closed-loop machine-room simulator that stands in for
// the paper's physical testbed: a rack of servers (internal/thermal +
// internal/power), the room's air paths (internal/room), and a CRAC with
// an exhaust-set-point control loop (internal/cooling), advanced together
// in discrete time. Policies interact with it exactly as the authors
// interacted with their rack: set per-machine loads, power machines on or
// off, move the CRAC set point, and read noisy sensors (internal/telemetry).
//
//coolopt:deterministic
package sim

import (
	"errors"
	"fmt"

	"coolopt/internal/cooling"
	"coolopt/internal/mathx"
	"coolopt/internal/room"
	"coolopt/internal/telemetry"
	"coolopt/internal/thermal"
	"coolopt/internal/units"
)

// passiveFlowFraction is the share of nominal air flow that still moves
// through a powered-off machine (natural convection and neighbour fans),
// keeping its thermal state coupled to the room.
const passiveFlowFraction = 0.1

// Config assembles a simulator.
type Config struct {
	// Rack is the ground-truth machine population.
	Rack *room.Rack
	// CRAC configures the cooling unit.
	CRAC cooling.Params
	// SetPointC is the initial exhaust set point in °C.
	SetPointC float64
	// DT is the integration step in seconds (default 1).
	DT float64
	// Seed drives all sensor noise.
	Seed int64
	// AmbientC is the initial air temperature everywhere (default 22).
	AmbientC float64
	// TempNoiseC, PowerNoiseW configure sensor quality (defaults 0.4 °C
	// and 0.8 W; zero keeps the defaults, negative disables noise).
	TempNoiseC  float64
	PowerNoiseW float64
	// BaseHeatW is non-server heat the CRAC must also remove — lights,
	// switches, UPS losses, people. It warms the return stream by
	// BaseHeatW/(c_air·f_ac).
	BaseHeatW float64
	// BootS is the time a machine needs after power-on before it can
	// serve load (default 60 s; negative disables boot transients).
	// While booting a machine draws its idle power and any load
	// assigned to it is queued until the boot completes.
	BootS float64
}

// Simulator is the stateful machine room. Build with New. All methods are
// single-goroutine; wrap externally if concurrent access is needed.
type Simulator struct {
	rack     *room.Rack
	crac     *cooling.CRAC
	dt       float64
	now      float64
	baseHeat float64

	states   []thermal.State
	on       []bool
	loads    []float64
	pending  []float64 // load queued while a machine boots
	booting  []float64 // seconds of boot remaining (0 when up)
	bootS    float64
	serverW  []float64 // true electrical draw last step
	returnC  float64
	hotAisle float64 // flow-weighted machine outlet temperature
	cracW    float64 // true CRAC electrical draw last step

	tempSensors []*telemetry.TempSensor
	powerMeters []*telemetry.PowerMeter
	cracMeter   *telemetry.PowerMeter
}

// New builds a simulator with every machine powered on at zero load.
func New(cfg Config) (*Simulator, error) {
	if cfg.Rack == nil {
		return nil, errors.New("sim: nil rack")
	}
	if err := cfg.Rack.Validate(); err != nil {
		return nil, err
	}
	if cfg.DT == 0 {
		cfg.DT = 1
	}
	if cfg.DT < 0 || cfg.DT > 5 {
		return nil, fmt.Errorf("sim: dt = %v s outside (0, 5]", cfg.DT)
	}
	if cfg.AmbientC == 0 {
		cfg.AmbientC = 22
	}
	tempNoise, tempRes := cfg.TempNoiseC, 1.0
	if tempNoise == 0 {
		tempNoise = 0.4
	}
	if tempNoise < 0 {
		tempNoise, tempRes = 0, 0
	}
	powerNoise, powerRes := cfg.PowerNoiseW, 0.1
	if powerNoise == 0 {
		powerNoise = 0.8
	}
	if powerNoise < 0 {
		powerNoise, powerRes = 0, 0
	}

	crac, err := cooling.New(cfg.CRAC, cfg.SetPointC)
	if err != nil {
		return nil, err
	}

	if cfg.BaseHeatW < 0 {
		return nil, fmt.Errorf("sim: base heat %v W must be non-negative", cfg.BaseHeatW)
	}
	if cfg.BootS == 0 {
		cfg.BootS = 60
	}
	if cfg.BootS < 0 {
		cfg.BootS = 0
	}

	n := cfg.Rack.Size()
	s := &Simulator{
		rack:        cfg.Rack,
		crac:        crac,
		dt:          cfg.DT,
		baseHeat:    cfg.BaseHeatW,
		states:      make([]thermal.State, n),
		on:          make([]bool, n),
		loads:       make([]float64, n),
		pending:     make([]float64, n),
		booting:     make([]float64, n),
		bootS:       cfg.BootS,
		serverW:     make([]float64, n),
		returnC:     cfg.AmbientC,
		hotAisle:    cfg.AmbientC,
		tempSensors: make([]*telemetry.TempSensor, n),
		powerMeters: make([]*telemetry.PowerMeter, n),
	}
	rng := mathx.NewRand(cfg.Seed)
	for i := range s.states {
		s.states[i] = thermal.State{TCPU: cfg.AmbientC, TBox: cfg.AmbientC}
		s.on[i] = true
		s.tempSensors[i], err = telemetry.NewTempSensor(rng.Fork(), tempNoise, tempRes)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if powerNoise > 0 {
			gain = rng.Normal(0, 0.01)
		}
		s.powerMeters[i], err = telemetry.NewPowerMeter(rng.Fork(), gain, powerNoise, powerRes)
		if err != nil {
			return nil, err
		}
	}
	s.cracMeter, err = telemetry.NewPowerMeter(rng.Fork(), 0, powerNoise*5, powerRes*10)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Clone returns an independent simulator starting from this one's exact
// physical state: the read-only rack is shared, all mutable state (thermal
// states, loads, power flags, CRAC control loop) is deep-copied, and the
// sensors keep their calibration (per-meter gain, noise level, resolution)
// while drawing future noise from fresh streams derived from seed. Two
// clones with the same seed evolve identically; concurrent evaluation
// sweeps give each worker its own clone.
func (s *Simulator) Clone(seed int64) *Simulator {
	c := *s
	c.crac = s.crac.Clone()
	c.states = append([]thermal.State(nil), s.states...)
	c.on = append([]bool(nil), s.on...)
	c.loads = append([]float64(nil), s.loads...)
	c.pending = append([]float64(nil), s.pending...)
	c.booting = append([]float64(nil), s.booting...)
	c.serverW = append([]float64(nil), s.serverW...)
	rng := mathx.NewRand(seed)
	c.tempSensors = make([]*telemetry.TempSensor, len(s.tempSensors))
	c.powerMeters = make([]*telemetry.PowerMeter, len(s.powerMeters))
	for i := range s.tempSensors {
		c.tempSensors[i] = s.tempSensors[i].Clone(rng.Fork())
		c.powerMeters[i] = s.powerMeters[i].Clone(rng.Fork())
	}
	c.cracMeter = s.cracMeter.Clone(rng.Fork())
	return &c
}

// Size returns the number of machines.
func (s *Simulator) Size() int { return s.rack.Size() }

// Time returns the simulation clock in seconds.
func (s *Simulator) Time() float64 { return s.now }

// SetLoad assigns a utilization in [0, 1] to machine i. Assigning load to
// a powered-off machine is an error (the balancer must not route there);
// load assigned to a machine that is still booting is queued and applied
// when the boot completes.
func (s *Simulator) SetLoad(i int, util float64) error {
	if i < 0 || i >= s.Size() {
		return fmt.Errorf("sim: machine %d out of range", i)
	}
	if util < 0 || util > 1 {
		return fmt.Errorf("sim: utilization %v outside [0, 1]", util)
	}
	if !s.on[i] && util > 0 {
		return fmt.Errorf("sim: machine %d is powered off", i)
	}
	if s.booting[i] > 0 {
		s.pending[i] = util
		return nil
	}
	s.loads[i] = util
	return nil
}

// SetLoads assigns all utilizations at once; the slice is indexed by
// machine ID.
func (s *Simulator) SetLoads(utils []float64) error {
	if len(utils) != s.Size() {
		return fmt.Errorf("sim: %d loads for %d machines", len(utils), s.Size())
	}
	for i, u := range utils {
		if err := s.SetLoad(i, u); err != nil {
			return err
		}
	}
	return nil
}

// SetPower turns machine i on or off. Powering off drops the machine's
// load immediately; powering a machine on starts its boot, during which
// it draws idle power and cannot serve load.
func (s *Simulator) SetPower(i int, on bool) error {
	if i < 0 || i >= s.Size() {
		return fmt.Errorf("sim: machine %d out of range", i)
	}
	if on && !s.on[i] {
		s.booting[i] = s.bootS
	}
	s.on[i] = on
	if !on {
		s.loads[i] = 0
		s.pending[i] = 0
		s.booting[i] = 0
	}
	return nil
}

// IsBooting reports whether machine i is powered on but still booting.
func (s *Simulator) IsBooting(i int) bool { return s.booting[i] > 0 }

// SetSetPoint moves the CRAC exhaust set point.
func (s *Simulator) SetSetPoint(tSPC float64) { s.crac.SetSetPoint(tSPC) }

// SetPoint returns the CRAC exhaust set point in °C.
func (s *Simulator) SetPoint() float64 { return s.crac.SetPoint() }

// Step advances the room by one integration step.
func (s *Simulator) Step() {
	n := s.Size()
	supply := s.crac.Supply()
	flows := make([]float64, n)
	outlets := make([]float64, n)
	var pickupW float64 // net enthalpy the machines add to the air stream

	for i := 0; i < n; i++ {
		m := s.rack.Machines[i]
		// The recirculated fraction of a machine's intake comes from
		// the hot aisle — its neighbours' exhaust — not from the
		// cooler, bypass-diluted stream the CRAC sees.
		inlet := m.InletTemp(supply, s.hotAisle)
		if s.booting[i] > 0 {
			s.booting[i] -= s.dt
			if s.booting[i] <= 0 {
				s.booting[i] = 0
				s.loads[i] = s.pending[i]
				s.pending[i] = 0
			}
		}
		s.serverW[i] = m.Power.Draw(s.loads[i], s.states[i].TCPU, s.on[i])

		params := m.Thermal
		if !s.on[i] {
			params.Flow *= passiveFlowFraction
		}
		s.states[i] = params.Step(s.states[i], s.serverW[i], inlet, s.dt)
		flows[i] = params.Flow
		outlets[i] = s.states[i].TBox
		pickupW += params.Flow * params.CAir * (s.states[i].TBox - inlet)
	}

	// Return stream: energy balance over the room control volume. Only
	// the net enthalpy the machines add to the air (their actual pickup,
	// not their recirculating internal loop) plus the room's base heat
	// reaches the CRAC, so heat removed equals heat generated exactly at
	// steady state. The hot aisle — what recirculating inlets ingest —
	// is the flow-weighted mix of machine outlets.
	cracParams := s.crac.Params()
	s.returnC = supply + (pickupW+s.baseHeat)/(cracParams.CAir*cracParams.Flow)
	var sumFlow, sumHeat float64
	for i := range flows {
		sumFlow += flows[i]
		sumHeat += flows[i] * outlets[i]
	}
	if sumFlow > 0 {
		s.hotAisle = sumHeat / sumFlow
	} else {
		s.hotAisle = s.returnC
	}
	s.cracW = float64(s.crac.ElectricalPower(units.Celsius(s.returnC)))
	s.crac.Step(s.returnC, s.dt)
	s.now += s.dt
}

// Run advances the room by the given number of simulated seconds.
func (s *Simulator) Run(seconds float64) {
	steps := int(seconds / s.dt)
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// RunUntilSettled steps until the total true power stays within band Watts
// between consecutive seconds for 30 consecutive steps, or until
// maxSeconds elapses; it reports whether the room settled.
func (s *Simulator) RunUntilSettled(maxSeconds, bandW float64) (bool, error) {
	det, err := mathx.NewSettleDetector(bandW, 30)
	if err != nil {
		return false, err
	}
	deadline := s.now + maxSeconds
	for s.now < deadline {
		s.Step()
		if det.Update(s.TrueTotalPower()) {
			return true, nil
		}
	}
	return false, nil
}

// TrueCPUTemp returns the ground-truth CPU temperature of machine i in °C.
func (s *Simulator) TrueCPUTemp(i int) float64 { return s.states[i].TCPU }

// MeasuredCPUTemp returns the lm-sensors-style reading for machine i.
func (s *Simulator) MeasuredCPUTemp(i int) float64 {
	return s.tempSensors[i].Read(s.states[i].TCPU)
}

// TrueServerPower returns machine i's ground-truth draw in Watts as of the
// last step.
func (s *Simulator) TrueServerPower(i int) float64 { return s.serverW[i] }

// MeasuredServerPower returns the power-meter reading for machine i.
func (s *Simulator) MeasuredServerPower(i int) float64 {
	return s.powerMeters[i].Read(s.serverW[i])
}

// TrueCRACPower returns the cooling unit's ground-truth draw in Watts as
// of the last step.
func (s *Simulator) TrueCRACPower() float64 { return s.cracW }

// MeasuredCRACPower returns the metered cooling power.
func (s *Simulator) MeasuredCRACPower() float64 { return s.cracMeter.Read(s.cracW) }

// TrueTotalPower returns the room's ground-truth total draw in Watts.
func (s *Simulator) TrueTotalPower() float64 {
	total := s.cracW
	for _, w := range s.serverW {
		total += w
	}
	return total
}

// TrueServerPowerSum returns the summed ground-truth server draw in Watts.
func (s *Simulator) TrueServerPowerSum() float64 {
	total := 0.0
	for _, w := range s.serverW {
		total += w
	}
	return total
}

// Supply returns the CRAC supply temperature T_ac in °C.
func (s *Simulator) Supply() float64 { return s.crac.Supply() }

// ReturnTemp returns the return (exhaust) air temperature in °C.
func (s *Simulator) ReturnTemp() float64 { return s.returnC }

// IsOn reports whether machine i is powered on.
func (s *Simulator) IsOn(i int) bool { return s.on[i] }

// Load returns machine i's current utilization.
func (s *Simulator) Load(i int) float64 { return s.loads[i] }

// MaxTrueCPUTemp returns the hottest ground-truth CPU temperature across
// powered-on machines, or the ambient floor when everything is off.
func (s *Simulator) MaxTrueCPUTemp() float64 {
	maxT := -1e9
	any := false
	for i, st := range s.states {
		if s.on[i] && st.TCPU > maxT {
			maxT = st.TCPU
			any = true
		}
	}
	if !any {
		return s.returnC
	}
	return maxT
}

// Rack exposes the ground-truth rack (used by profiling drivers to know
// machine count and capacities, never by policies to peek at physics).
func (s *Simulator) Rack() *room.Rack { return s.rack }
