package sim

import "testing"

// BenchmarkStep measures one integration step of the full 20-machine room
// — the unit cost of every simulated second.
func BenchmarkStep(b *testing.B) {
	s, err := NewDefault(1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < s.Size(); i++ {
		if err := s.SetLoad(i, 0.6); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkRunHour measures an hour of simulated room time.
func BenchmarkRunHour(b *testing.B) {
	s, err := NewDefault(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(3600)
	}
}
