module coolopt

go 1.22
