// Remoteroom demonstrates the deployment story end to end inside one
// process: a simulated machine room is served over HTTP (what cmd/roomd
// does), a controller dials it (what cmd/ctrld does), replays the paper's
// profiling protocol across the network, computes the energy-optimal plan
// for a 60 % load, pushes it through the API, and reports the metered
// steady state.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"coolopt"
	"coolopt/internal/profiling"
	"coolopt/internal/roomapi"
	"coolopt/internal/roomclient"
	"coolopt/internal/sim"
	"coolopt/internal/units"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- server side: host the virtual testbed ---------------------
	simRoom, err := sim.NewDefault(1)
	if err != nil {
		return err
	}
	handler, err := roomapi.NewServer(simRoom)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln) // returns on Close
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("room served at %s\n", baseURL)

	// --- controller side: everything over HTTP ---------------------
	room, err := roomclient.Dial(baseURL, nil)
	if err != nil {
		return err
	}
	fmt.Printf("dialed room: %d machines\n", room.Size())

	fmt.Println("replaying the §IV-A profiling protocol over the network…")
	res, err := profiling.Run(profiling.Config{Sim: room})
	if err != nil {
		return err
	}
	if err := room.Err(); err != nil {
		return fmt.Errorf("transport errors during profiling: %w", err)
	}
	fmt.Printf("fitted remotely: P = %.1f·L + %.1f W (R² %.4f), cooling %.0f W/°C\n",
		res.Profile.W1, res.Profile.W2, res.PowerFit.R2, res.Profile.CoolFactor)

	opt, err := coolopt.NewOptimizer(res.Profile)
	if err != nil {
		return err
	}
	load := 0.6 * float64(room.Size())
	plan, err := opt.Plan(load)
	if err != nil {
		return err
	}

	// Push the plan through the API with a 2.5 °C guard band.
	for _, i := range plan.On {
		if err := room.SetPower(i, true); err != nil {
			return err
		}
		if err := room.SetLoad(i, min(plan.Loads[i], 1)); err != nil {
			return err
		}
	}
	onSet := make(map[int]bool, len(plan.On))
	for _, i := range plan.On {
		onSet[i] = true
	}
	for i := 0; i < room.Size(); i++ {
		if !onSet[i] {
			if err := room.SetPower(i, false); err != nil {
				return err
			}
		}
	}
	var predictedW units.Watts
	for _, i := range plan.On {
		predictedW += res.Profile.ServerPower(plan.Loads[i])
	}
	room.SetSetPoint(float64(res.Calibration.SetPointFor(plan.TAcC-2.5, predictedW)))
	fmt.Printf("applied optimal plan for 60%% load: %d machines on; settling…\n", len(plan.On))
	room.Run(1500)

	var serverW float64
	maxCPU := -1e9
	for i := 0; i < room.Size(); i++ {
		serverW += room.MeasuredServerPower(i)
		if room.IsOn(i) && room.MeasuredCPUTemp(i) > maxCPU {
			maxCPU = room.MeasuredCPUTemp(i)
		}
	}
	fmt.Printf("steady state: %.0f W total (servers %.0f + cooling %.0f), hottest CPU %.1f °C (T_max %.0f)\n",
		serverW+room.MeasuredCRACPower(), serverW, room.MeasuredCRACPower(), maxCPU, res.Profile.TMaxC)
	return room.Err()
}
