// Consolidation exercises the paper's §III-B machinery at a scale beyond
// the testbed: a synthetic 120-machine room. It runs Algorithm 1's
// offline pre-processing once, then answers online consolidation queries,
// comparing the guaranteed-optimal answer against the two footnote-1
// heuristics the paper shows can fail.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"coolopt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// syntheticProfile builds a 200-machine profile with a plausible thermal
// gradient and per-machine variation, without simulating a room — the
// consolidation algorithms only need the fitted coefficients.
func syntheticProfile(n int) *coolopt.Profile {
	machines := make([]coolopt.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n-1)
		jitter := 0.05 * math.Sin(float64(i)*2.399963) // deterministic spread
		machines[i] = coolopt.MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 * (1 + 0.1*h + jitter),
			Gamma: 0.5 + 2.2*h - 10*jitter,
		}
	}
	return &coolopt.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func run() error {
	const n = 120
	profile := syntheticProfile(n)
	if err := profile.Validate(); err != nil {
		return err
	}
	red := profile.Reduce()

	start := time.Now()
	pre, err := coolopt.Preprocess(red)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 offline pre-processing for %d machines: %v\n", n, time.Since(start))
	fmt.Printf("  %d passing events, %d allStatus rows\n\n", pre.Events(), pre.StatusCount())

	fmt.Printf("%-8s%10s%14s%14s%14s%14s\n",
		"load", "query", "optimal W", "ratio-heur W", "greedy W", "verbatim W")
	for _, load := range []float64{15, 40, 60, 80, 100} {
		minK := int(math.Ceil(load))
		qStart := time.Now()
		exact, err := pre.QueryExact(load, minK)
		if err != nil {
			return err
		}
		qTime := time.Since(qStart)

		ratio, err := red.GreedyRatio(load, minK)
		if err != nil {
			return err
		}
		greedy, err := red.GreedyAdaptive(load, minK)
		if err != nil {
			return err
		}
		verbatim, err := pre.Query(load)
		if err != nil {
			return err
		}
		mark := " "
		if len(verbatim.Subset) < minK {
			// Algorithm 2 as published has no per-machine capacity
			// floor, so it may pick fewer than ⌈load⌉ machines.
			mark = "*"
		}
		fmt.Printf("%-8.0f%10s%14.1f%14.1f%14.1f%13.1f%s\n",
			load, qTime.Round(time.Microsecond), exact.Power, ratio.Power, greedy.Power, verbatim.Power, mark)
	}

	fmt.Println("\nper-query cost stays microseconds after the one-time pre-processing;")
	fmt.Println("heuristic columns ≥ the optimal column, with equality only when they happen to agree.")
	fmt.Println("* = verbatim Algorithm 2 picked fewer than ⌈load⌉ machines (no capacity floor in the paper's abstraction).")
	return nil
}
