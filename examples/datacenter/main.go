// Datacenter exercises the serving story at row scale: a 4-rack row is
// profiled once, frozen into an immutable snapshot, and then a fleet of
// concurrent clients — schedulers asking for plans, a capacity service
// asking maxL budget questions, a dashboard asking consolidation
// questions — all query the plan engine at the same time, with no locks
// and no cloning. Midway through, the room is re-profiled and the new
// snapshot is swapped in RCU-style while the clients keep querying.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	"coolopt"
)

const (
	racks   = 4
	perRack = 16
	clients = 8
	queries = 40
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	n := racks * perRack
	// Profile the row once. WithPreprocess freezes the fitted model into
	// the snapshot the engine serves from: WithMaxMachines sizes the
	// consolidation tables to the room, WithPreprocessWorkers parallelizes
	// the kinetic sweep that builds them.
	sys, err := coolopt.NewSystem(
		coolopt.WithRow(racks, perRack),
		coolopt.WithPreprocess(
			coolopt.WithMaxMachines(n),
			coolopt.WithPreprocessWorkers(runtime.NumCPU()),
		),
	)
	if err != nil {
		return err
	}
	eng := sys.Engine()
	fmt.Printf("row of %d racks × %d machines profiled; snapshot epoch %d\n",
		racks, perRack, eng.Epoch())

	// The fleet: every client hammers the engine concurrently. Plans are
	// answered off the immutable snapshot — no client ever waits on the
	// simulator, and identical queries coalesce onto one solve.
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var nPlans, nCached, nShared atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				switch q % 3 {
				case 0: // scheduler: an energy-optimal plan for this demand
					load := float64(n) * (0.2 + 0.05*float64((c+q)%8))
					resp, err := eng.Plan(ctx, coolopt.PlanRequest{Load: load})
					if err != nil {
						errs <- fmt.Errorf("client %d plan: %w", c, err)
						return
					}
					nPlans.Add(1)
					if resp.Cached {
						nCached.Add(1)
					}
					if resp.Shared {
						nShared.Add(1)
					}
				case 1: // capacity service: maxL under a power budget
					budget := float64(n) * 70 * (1 + 0.1*float64(q%4))
					if _, err := eng.MaxLoad(budget); err != nil {
						errs <- fmt.Errorf("client %d maxload: %w", c, err)
						return
					}
				case 2: // dashboard: which machines would we consolidate to?
					load := float64(n) * 0.3
					if _, err := eng.Consolidate(load, 1); err != nil {
						errs <- fmt.Errorf("client %d consolidate: %w", c, err)
						return
					}
				}
			}
		}(c)
	}

	// While the fleet runs: re-profile and swap the snapshot in. Clients
	// mid-query finish against the snapshot they started on; the epoch
	// stamp on every response says which model answered.
	snap2, err := coolopt.NewSnapshot(sys.Profile(), eng.Epoch()+1, coolopt.WithMaxMachines(n))
	if err != nil {
		return err
	}
	if err := eng.Install(snap2); err != nil {
		return err
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}

	fmt.Printf("%d clients × %d queries served; snapshot swapped to epoch %d mid-flight\n",
		clients, queries, eng.Epoch())
	fmt.Printf("plan queries: %d total, %d cache hits, %d coalesced onto concurrent solves\n",
		nPlans.Load(), nCached.Load(), nShared.Load())

	// One last look at what the current snapshot says for a 30 % day.
	resp, err := eng.Plan(ctx, coolopt.PlanRequest{Load: 0.3 * float64(n)})
	if err != nil {
		return err
	}
	fmt.Printf("30%% load plan: %d/%d machines on, supply %.1f °C (epoch %d)\n",
		len(resp.Plan.On), n, float64(resp.Plan.TAcC), resp.Epoch)
	return nil
}
