// Mixedfleet exercises the heterogeneous-hardware extension: a room with
// two machine generations, where the old generation burns 60 % more
// energy per unit of work. The generalized solver parks the old machines
// at light load and ramps them in only when the efficient generation runs
// out of thermal headroom — a behaviour the paper's homogeneous closed
// form cannot express.
package main

import (
	"fmt"
	"log"

	"coolopt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func fleet() *coolopt.HeteroProfile {
	machines := make([]coolopt.HeteroMachine, 12)
	for i := range machines {
		h := float64(i) / 11
		m := coolopt.HeteroMachine{
			W1: 50, W2: 34,
			Alpha: 1.0,
			Beta:  0.45 + 0.04*h,
			Gamma: 0.6 + 1.6*h,
		}
		if i >= 8 { // the old generation sits at the top of the rack
			m.W1, m.W2 = 80, 46
		}
		machines[i] = m
	}
	return &coolopt.HeteroProfile{
		CoolFactor: 120, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func run() error {
	hp := fleet()
	if err := hp.Validate(); err != nil {
		return err
	}
	on := make([]int, hp.Size())
	for i := range on {
		on[i] = i
	}

	fmt.Println("12 machines: #0–7 new generation (50 W/unit), #8–11 old generation (80 W/unit)")
	fmt.Printf("%-10s%12s%14s%14s%12s\n", "load", "supply °C", "new-gen load", "old-gen load", "power W")
	for _, load := range []float64{2, 4, 6, 8, 10, 11} {
		plan, err := hp.Solve(on, load)
		if err != nil {
			return err
		}
		var newGen, oldGen float64
		for i, l := range plan.Loads {
			if i >= 8 {
				oldGen += l
			} else {
				newGen += l
			}
		}
		fmt.Printf("%-10.1f%12.2f%14.2f%14.2f%12.0f\n",
			load, plan.TAcC, newGen, oldGen, hp.PlanPower(plan))
	}
	fmt.Println("\nat light load the old generation idles; it ramps in only once the new")
	fmt.Println("generation saturates — energy-aware placement the paper lists as future work.")
	return nil
}
