// Quickstart: build the simulated 20-machine room, profile it, compute
// the energy-optimal plan for a 50 % load, and compare the paper's
// holistic solution (#8) against the best prior art, cool job allocation
// (#7), on the live room.
package main

import (
	"fmt"
	"log"

	"coolopt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// NewSystem builds the room and replays the paper's profiling
	// protocol (§IV-A) to fit every model coefficient from noisy
	// sensors.
	sys, err := coolopt.NewSystem()
	if err != nil {
		return err
	}
	profile := sys.Profile()
	fmt.Printf("profiled room: %d machines, P = %.1f·L + %.1f W, cooling %.0f W per °C of supply\n\n",
		profile.Size(), profile.W1, profile.W2, profile.CoolFactor)

	// Ask the optimizer for the minimum-energy plan at 50 % load.
	opt, err := coolopt.NewOptimizer(profile)
	if err != nil {
		return err
	}
	load := 0.5 * float64(profile.Size())
	plan, err := opt.Plan(load)
	if err != nil {
		return err
	}
	fmt.Printf("optimal plan for 50%% load: %d machines on, supply %.1f °C\n",
		len(plan.On), plan.TAcC)
	for _, i := range plan.On {
		fmt.Printf("  machine %2d → %.0f%% utilization\n", i, plan.Loads[i]*100)
	}

	// Execute both the optimal plan (#8) and the cool-job-allocation
	// baseline (#7) on the simulated room and compare measured power.
	fmt.Println()
	for _, m := range []coolopt.Method{coolopt.BottomUpACCons, coolopt.OptimalACCons} {
		meas, err := sys.Evaluate(m, 0.5)
		if err != nil {
			return err
		}
		fmt.Printf("%-45s %.0f W total (hottest CPU %.1f °C, T_max %.0f)\n",
			meas.Method, meas.TotalW, meas.MaxCPUC, profile.TMaxC)
	}
	return nil
}
