// Machineroom replays the paper's full machine-room case study end to
// end: profile the simulated 20-machine rack, sweep all eight evaluation
// scenarios of Fig. 4 across the load range, print the Fig. 6 comparison
// table, verify the temperature and throughput constraints, and summarize
// the holistic solution's savings.
package main

import (
	"fmt"
	"log"

	"coolopt"
	"coolopt/internal/figures"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("building and profiling the machine room…")
	sys, err := coolopt.NewSystem()
	if err != nil {
		return err
	}
	res := sys.Profiling()
	fmt.Printf("power model fit R² %.4f, worst thermal fit R² %.4f\n\n",
		res.PowerFit.R2, worstR2(res.ThermalFits))

	fmt.Println("sweeping the eight scenarios (10–100 % load)…")
	ds, err := figures.Collect(sys, nil)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Println(ds.Fig6().Render())
	fmt.Println(ds.Fig9().Render())

	if _, err := ds.VerifyConstraints(); err != nil {
		return fmt.Errorf("constraint verification failed: %w", err)
	}
	fmt.Println("verified: no CPU exceeded T_max and every scenario carried its full load.")
	return nil
}

func worstR2(fits []coolopt.FitReport) float64 {
	worst := 1.0
	for _, f := range fits {
		if f.R2 < worst {
			worst = f.R2
		}
	}
	return worst
}
