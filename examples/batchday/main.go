// Batchday is the full energy-minimal batch-processing story: a day's
// worth of click-stream jobs with deadlines is turned into the minimum
// demand profile that keeps every deadline (internal/batch), and that
// profile is executed on the simulated machine room by the re-planning
// controller running the paper's optimizer (#8). The same jobs run again
// under a naive operator (full-speed bursts, even allocation, fixed cold
// supply) for comparison.
package main

import (
	"fmt"
	"log"
	"sort"

	"coolopt"
	"coolopt/internal/batch"
	"coolopt/internal/controller"
	"coolopt/internal/trace"
)

// The "day" is compressed to 6000 simulated seconds.
const (
	dayS  = 6000.0
	stepS = 50.0
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func jobs() []batch.Job {
	return []batch.Job{
		{ID: "clickstream-nightly", Work: 24000, SubmitS: 0, DeadlineS: 5800},
		{ID: "index-rebuild", Work: 9000, SubmitS: 400, DeadlineS: 3000},
		{ID: "report-hourly-1", Work: 1500, SubmitS: 800, DeadlineS: 1600},
		{ID: "report-hourly-2", Work: 1500, SubmitS: 2600, DeadlineS: 3400},
		{ID: "report-hourly-3", Work: 1500, SubmitS: 4400, DeadlineS: 5200},
		{ID: "ml-retrain", Work: 6000, SubmitS: 1200, DeadlineS: 5600},
	}
}

func run() error {
	sys, err := coolopt.NewSystem()
	if err != nil {
		return err
	}
	capacity := float64(sys.Size())

	demand, completion, err := batch.Plan(jobs(), capacity, dayS, stepS)
	if err != nil {
		return err
	}
	if err := batch.DeadlinesMet(jobs(), completion, stepS); err != nil {
		return err
	}

	fmt.Println("minimum-demand schedule (every deadline met):")
	ids := make([]string, 0, len(completion))
	for id := range completion {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-22s done at %6.0f s\n", id, completion[id])
	}

	optimal, err := controller.Run(controller.Config{Sys: sys}, demand, dayS)
	if err != nil {
		return err
	}

	// Naive operator: run every job flat out as it arrives (demand 1
	// while any work is pending — approximated by the peak-hold trace),
	// with even allocation and fixed cold supply.
	naiveTrace, err := trace.Steps(1e9, 1.0)
	if err != nil {
		return err
	}
	naive, err := controller.Run(controller.Config{
		Sys:             sys,
		Method:          coolopt.EvenNoACNoCons,
		ReplanIntervalS: 1e9,
		Hysteresis:      1,
	}, naiveTrace, dayS)
	if err != nil {
		return err
	}

	fmt.Printf("\nenergy for the day:\n")
	fmt.Printf("  deadline-paced + optimal placement: %7.0f kJ (avg %6.0f W, T_max exceeded %3.0f s)\n",
		optimal.EnergyJ/1000, optimal.AvgPowerW, optimal.ViolationS)
	fmt.Printf("  full-speed bursts, naive operator:  %7.0f kJ (avg %6.0f W)\n",
		naive.EnergyJ/1000, naive.AvgPowerW)
	fmt.Printf("  saving: %.0f%%\n", (naive.EnergyJ-optimal.EnergyJ)/naive.EnergyJ*100)
	return nil
}
