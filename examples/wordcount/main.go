// Wordcount drives the paper's actual application workload (§IV-A): html
// documents are stripped to text and reduced to word histograms, with a
// central balancer placing tasks on machines in proportion to the
// energy-optimal load distribution. It demonstrates that the optimizer's
// slightly imbalanced allocation translates directly into per-machine
// task rates without losing throughput.
package main

import (
	"fmt"
	"log"
	"sort"

	"coolopt"
	"coolopt/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := coolopt.NewSystem()
	if err != nil {
		return err
	}
	profile := sys.Profile()

	opt, err := coolopt.NewOptimizer(profile)
	if err != nil {
		return err
	}
	const loadFrac = 0.6
	plan, err := opt.Plan(loadFrac * float64(profile.Size()))
	if err != nil {
		return err
	}

	// Convert utilizations into task rates. The paper measures each
	// machine's capacity (tasks/s at 100 %) before the experiment; here
	// every machine is nominally 120 tasks/s hardware.
	capacities := make([]float64, profile.Size())
	for i := range capacities {
		capacities[i] = sys.Sim().Rack().Machines[i].CapacityTPS
	}
	rates, err := workload.RatesFromAllocation(plan.Loads, capacities)
	if err != nil {
		return err
	}
	balancer, err := workload.NewBalancer(rates)
	if err != nil {
		return err
	}

	// Stream a synthetic click-log corpus through the balancer and
	// process every document for real.
	gen := workload.NewGenerator(7)
	const tasks = 20000
	perMachineWords := make([]int, profile.Size())
	globalHist := make(map[string]int)
	for t := 0; t < tasks; t++ {
		doc := gen.Next()
		m := balancer.Dispatch()
		hist := workload.Process(doc)
		for w, c := range hist {
			globalHist[w] += c
		}
		for _, c := range hist {
			perMachineWords[m] += c
		}
	}

	fmt.Printf("dispatched %d documents across %d machines (plan: %.0f%% load)\n\n",
		balancer.TotalDispatched(), len(plan.On), loadFrac*100)
	fmt.Printf("%-8s%12s%14s%16s\n", "machine", "tasks", "task share", "planned share")
	counts := balancer.Counts()
	var totalRate float64
	for _, r := range rates {
		totalRate += r
	}
	for i, c := range counts {
		if c == 0 && rates[i] == 0 {
			continue
		}
		fmt.Printf("%-8d%12d%13.2f%%%15.2f%%\n",
			i, c, float64(c)/tasks*100, rates[i]/totalRate*100)
	}

	// Top of the aggregated histogram — the job's actual output.
	type wc struct {
		word  string
		count int
	}
	var top []wc
	for w, c := range globalHist {
		top = append(top, wc{w, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].word < top[j].word
	})
	fmt.Println("\ntop words across the corpus:")
	for _, e := range top[:5] {
		fmt.Printf("  %-14s %d\n", e.word, e.count)
	}
	return nil
}
