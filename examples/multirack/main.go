// Multirack exercises the paper's across-racks setting: a row of three
// racks where racks farther from the CRAC receive a weaker share of
// supply air. The optimizer sees the whole row as one machine pool, so
// consolidation naturally concentrates load near the cooling unit — the
// "selection of those machines to power on within or across racks" the
// paper claims over rack-granularity schedulers.
package main

import (
	"fmt"
	"log"

	"coolopt"
)

const (
	racks   = 3
	perRack = 10
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := coolopt.NewSystem(coolopt.WithRow(racks, perRack))
	if err != nil {
		return err
	}
	opt, err := coolopt.NewOptimizer(sys.Profile())
	if err != nil {
		return err
	}

	const loadFrac = 0.45
	plan, err := opt.Plan(loadFrac * float64(sys.Size()))
	if err != nil {
		return err
	}

	perRackLoad := make([]float64, racks)
	perRackOn := make([]int, racks)
	for _, i := range plan.On {
		r := i / perRack
		perRackOn[r]++
		perRackLoad[r] += plan.Loads[i]
	}

	fmt.Printf("row of %d racks × %d machines, %.0f%% total load, %d machines on, supply %.1f °C\n\n",
		racks, perRack, loadFrac*100, len(plan.On), plan.TAcC)
	fmt.Printf("%-8s%12s%14s\n", "rack", "machines on", "load (units)")
	for r := 0; r < racks; r++ {
		fmt.Printf("%-8d%12d%14.2f\n", r, perRackOn[r], perRackLoad[r])
	}
	if perRackLoad[0] > perRackLoad[racks-1] {
		fmt.Println("\nthe rack nearest the CRAC carries the most load, as expected.")
	}

	// Execute the plan end to end and confirm constraints on the live row.
	meas, err := sys.Execute(coolopt.OptimalACCons, plan, loadFrac)
	if err != nil {
		return err
	}
	fmt.Printf("\nmeasured: %.0f W total, hottest CPU %.1f °C (T_max %.0f), violated: %v\n",
		meas.TotalW, meas.MaxCPUC, sys.Profile().TMaxC, meas.Violated)
	return nil
}
