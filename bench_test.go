package coolopt_test

// One benchmark per table/figure of the paper's evaluation section, plus
// algorithmic benchmarks for the paper's contribution (closed-form solve,
// Algorithm 1 pre-processing, Algorithm 2 / exact queries) and the
// simulation substrate. Figure benchmarks regenerate their series from a
// shared scenario sweep collected once; headline numbers are attached as
// benchmark metrics.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"coolopt"
	"coolopt/internal/ablation"
	"coolopt/internal/controller"
	"coolopt/internal/figures"
	"coolopt/internal/trace"
)

var (
	benchOnce sync.Once
	benchSys  *coolopt.System
	benchDS   *figures.Dataset
	benchErr  error
)

func benchDataset(b *testing.B) *figures.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchSys, benchErr = coolopt.NewSystem()
		if benchErr != nil {
			return
		}
		benchDS, benchErr = figures.Collect(benchSys, nil)
	})
	if benchErr != nil {
		b.Fatalf("bench setup: %v", benchErr)
	}
	return benchDS
}

// syntheticProfile builds an n-machine profile without simulation, for
// algorithm-scaling benchmarks.
func syntheticProfile(n int) *coolopt.Profile {
	machines := make([]coolopt.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n-1)
		jitter := 0.05 * math.Sin(float64(i)*2.399963)
		machines[i] = coolopt.MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 * (1 + 0.1*h + jitter),
			Gamma: 0.5 + 2.2*h - 10*jitter,
		}
	}
	return &coolopt.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

// BenchmarkTable1 regenerates the physical-variables table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := figures.Table1().Render(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2PowerModelFit regenerates the measured-vs-predicted power
// comparison from the profiling run.
func BenchmarkFig2PowerModelFit(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = figures.Fig2(ds.System(), 40)
	}
	b.ReportMetric(ds.System().Profiling().PowerFit.R2, "fitR2")
	_ = fig
}

// BenchmarkFig3ThermalModelFit regenerates the stable-temperature
// comparison for one machine.
func BenchmarkFig3ThermalModelFit(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig3(ds.System(), 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ds.System().Profiling().ThermalFits[10].R2, "fitR2")
}

// BenchmarkFig5Consolidation regenerates the with/without-consolidation
// comparison.
func BenchmarkFig5Consolidation(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := ds.Fig5(); len(fig.Series) != 6 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig6AllMethods regenerates the all-methods power-vs-load table.
func BenchmarkFig6AllMethods(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := ds.Fig6(); len(fig.Series) != 8 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig7NoConsolidation regenerates the AC-control comparison of
// Even / Bottom-up / Optimal.
func BenchmarkFig7NoConsolidation(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := ds.Fig7(); len(fig.Series) != 3 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig8WithConsolidation regenerates the consolidated comparison.
func BenchmarkFig8WithConsolidation(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fig := ds.Fig8(); len(fig.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkFig9BottomUpVsOptimal regenerates the savings summary and
// reports the paper's headline numbers as metrics.
func BenchmarkFig9BottomUpVsOptimal(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = ds.Fig9()
	}
	b.StopTimer()
	sum, best := 0.0, 0.0
	for _, v := range fig.Series[0].Y {
		sum += v
		if v > best {
			best = v
		}
	}
	b.ReportMetric(sum/float64(len(fig.Series[0].Y)), "avgSaving%")
	b.ReportMetric(best, "bestSaving%")
}

// BenchmarkFig10AveragePower regenerates the per-method averages.
func BenchmarkFig10AveragePower(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	var fig *figures.Figure
	for i := 0; i < b.N; i++ {
		fig = ds.Fig10()
	}
	b.StopTimer()
	// Metric: average power of the paper's solution (#8).
	b.ReportMetric(fig.Series[0].Y[len(fig.Series[0].Y)-1], "method8avgW")
}

// BenchmarkVerifyConstraints regenerates the §IV-B verification report.
func BenchmarkVerifyConstraints(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.VerifyConstraints(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedFormSolve measures Eqs. 21–22 at growing cluster sizes —
// the paper notes linear complexity in the number of servers.
func BenchmarkClosedFormSolve(b *testing.B) {
	for _, n := range []int{20, 100, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := syntheticProfile(n)
			on := make([]int, n)
			for i := range on {
				on[i] = i
			}
			load := 0.6 * float64(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Solve(on, load); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizerPlan measures the full practical planner
// (consolidation + bounded solve).
func BenchmarkOptimizerPlan(b *testing.B) {
	for _, n := range []int{20, 60} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			opt, err := coolopt.NewOptimizer(syntheticProfile(n))
			if err != nil {
				b.Fatal(err)
			}
			load := 0.55 * float64(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Plan(load); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreprocess measures the kinetic Algorithm 1 offline phase
// (~O(n² lg n) time, O(n²) tables) at datacenter scales the seed's dense
// form could not reach. "table-bytes" is the resident size of the
// retained structure; "pieces" the compressed segment count.
func BenchmarkPreprocess(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			red := syntheticProfile(n).Reduce()
			b.ReportAllocs()
			b.ResetTimer()
			var pre *coolopt.Preprocessed
			var err error
			for i := 0; i < b.N; i++ {
				pre, err = coolopt.Preprocess(red)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(pre.TableBytes()), "table-bytes")
			b.ReportMetric(float64(pre.Pieces()), "pieces")
		})
	}
}

// BenchmarkPreprocessDense measures the seed's dense implementation for
// comparison. Its tables are O(n³): n = 1024 needs ~26 GB of RAM and
// minutes of build time, so run that size deliberately (for example with
// -benchtime=1x).
func BenchmarkPreprocessDense(b *testing.B) {
	for _, n := range []int{64, 256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			red := syntheticProfile(n).Reduce()
			b.ReportAllocs()
			b.ResetTimer()
			var pre *coolopt.DensePreprocessed
			var err error
			for i := 0; i < b.N; i++ {
				pre, err = coolopt.PreprocessDense(red, coolopt.WithMaxMachines(n))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(pre.TableBytes()), "table-bytes")
		})
	}
}

// BenchmarkQueryExact measures the robust online query against the
// compressed structure across scales.
func BenchmarkQueryExact(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pre, err := coolopt.Preprocess(syntheticProfile(n).Reduce())
			if err != nil {
				b.Fatal(err)
			}
			load := float64(n) / 2
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pre.QueryExact(load, n/2); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(pre.TableBytes()), "table-bytes")
		})
	}
}

// BenchmarkQueryVerbatim measures the paper's O(lg n) Algorithm 2 lookup.
func BenchmarkQueryVerbatim(b *testing.B) {
	pre, err := coolopt.Preprocess(syntheticProfile(80).Reduce())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pre.Query(40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBruteForceConsolidation measures the O(n·2ⁿ) oracle the paper
// dismisses as impractical — the baseline that motivates §III-B.
func BenchmarkBruteForceConsolidation(b *testing.B) {
	red := syntheticProfile(16).Reduce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := red.BruteForce(8, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioEvaluate measures one full scenario execution on the
// simulated room (plan, apply, settle, measure).
func BenchmarkScenarioEvaluate(b *testing.B) {
	ds := benchDataset(b)
	sys := ds.System()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Evaluate(coolopt.OptimalACCons, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilingRun measures the complete §IV-A profiling protocol on
// a fresh room.
func BenchmarkProfilingRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := coolopt.NewSystem(coolopt.WithSeed(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHeterogeneity runs the heterogeneity ablation study
// (DESIGN.md design choice: the rack's supply-air gradient).
func BenchmarkAblationHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := ablation.Heterogeneity(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			ys := fig.Series[0].Y
			b.ReportMetric(ys[len(ys)-1]-ys[0], "diversityGain_pp")
		}
	}
}

// BenchmarkAblationScale runs the room-size ablation (the paper's
// larger-rooms-save-more conjecture).
func BenchmarkAblationScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := ablation.Scale(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			ys := fig.Series[0].Y
			b.ReportMetric(ys[len(ys)-1], "saving40machines%")
		}
	}
}

// BenchmarkAblationCoolingShare runs the cooling-plant-efficiency
// ablation (design choice: the aged COP curve).
func BenchmarkAblationCoolingShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ablation.CoolingShare(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMargin runs the guard-band ablation (design choice:
// the 2.5 °C execution margin).
func BenchmarkAblationMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ablation.Margin(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkControllerDiurnalDay replays a compressed diurnal demand day
// under the re-planning controller (the dynamic-workload extension).
func BenchmarkControllerDiurnalDay(b *testing.B) {
	ds := benchDataset(b)
	tr, err := trace.Diurnal(2000, 100, 0.5, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := controller.Run(controller.Config{Sys: ds.System()}, tr, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AvgPowerW, "avgW")
		}
	}
}

// BenchmarkHeteroSolve measures the mixed-hardware solver (greedy LP fill
// + supply-temperature trisection).
func BenchmarkHeteroSolve(b *testing.B) {
	hp := syntheticProfile(40).Homogeneous()
	// Make half the fleet a different generation so the heterogeneous
	// path is actually exercised.
	for i := 0; i < hp.Size(); i += 2 {
		hp.Machines[i].W1 = 80
		hp.Machines[i].W2 = 46
	}
	on := make([]int, hp.Size())
	for i := range on {
		on[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hp.Solve(on, 22); err != nil {
			b.Fatal(err)
		}
	}
}
