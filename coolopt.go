// Package coolopt is a Go implementation of "Joint Optimization of
// Computing and Cooling Energy: Analytic Model and A Machine Room Case
// Study" (Li, Le, Pham, Heo, Abdelzaher — ICDCS 2012).
//
// The library has three layers:
//
//   - The paper's contribution: a closed-form energy-optimal load
//     distribution across a machine rack jointly with the CRAC supply
//     temperature (Profile.Solve, Eqs. 21–22), and a guaranteed-optimal
//     consolidation algorithm built on a 1-D particle system
//     (Preprocess/QueryExact, §III-B Algorithms 1–2). See Optimizer for
//     the practical planner combining both.
//
//   - A machine-room simulator standing in for the paper's 20-machine
//     testbed: per-server lumped-RC thermal models, a CRAC with an
//     exhaust-set-point control loop, rack air paths with hot-aisle
//     recirculation, and noisy sensors. See NewSystem.
//
//   - The paper's methodology around them: the profiling protocol that
//     fits every model coefficient from (simulated) measurements, the
//     baseline policies (even and cool-job/bottom-up allocation), the
//     eight-scenario evaluation matrix of Fig. 4, and a scenario runner
//     that reproduces every figure of the evaluation section.
//
// Quick start:
//
//	sys, err := coolopt.NewSystem()            // build + profile the room
//	m, err := sys.Evaluate(coolopt.OptimalACCons, 0.5)  // run scenario #8 at 50 % load
//	fmt.Println(m.TotalW)
//
// All temperatures are °C, powers are Watts, and load is expressed in
// machine-utilization units (one unit = one fully busy machine) or, at
// the System API boundary, as a fraction of total cluster capacity.
package coolopt

import (
	"coolopt/internal/baseline"
	"coolopt/internal/core"
	"coolopt/internal/engine"
	"coolopt/internal/profiling"
)

// Re-exported model and planner types. The concrete implementations live
// in internal packages; these aliases are the supported public surface.
type (
	// Profile holds the fitted model of a machine room (paper Eqs.
	// 8–10) and implements the closed-form solver.
	Profile = core.Profile
	// MachineProfile holds one machine's thermal coefficients (Eq. 8).
	MachineProfile = core.MachineProfile
	// Plan is an executable control decision: on set, load split,
	// supply temperature.
	Plan = core.Plan
	// Optimizer is the practical planner (consolidation + closed form).
	Optimizer = core.Optimizer
	// Pair and Reduced are the consolidation abstraction of §III-B.
	Pair = core.Pair
	// Reduced is the reduced consolidation instance (a_i, b_i, w2, ρ).
	Reduced = core.Reduced
	// Selection is a consolidation outcome.
	Selection = core.Selection
	// Preprocessed is Algorithm 1's output in its compressed kinetic
	// form: O(n²) memory, queries in O(n·lg² n).
	Preprocessed = core.Preprocessed
	// DensePreprocessed is the paper-literal dense form of Algorithm 1
	// (O(n³) tables), kept as the reference implementation.
	DensePreprocessed = core.DensePreprocessed
	// PreprocessOption configures Preprocess / PreprocessDense /
	// NewOptimizer (machine cap, worker pool).
	PreprocessOption = core.PreprocessOption
	// HeteroProfile and HeteroMachine extend the closed form to
	// mixed-hardware rooms where every machine has its own power model
	// (the extension the paper names as future work).
	HeteroProfile = core.HeteroProfile
	// HeteroMachine is one machine of a mixed-hardware room.
	HeteroMachine = core.HeteroMachine
	// Snapshot is an immutable planning model: per-machine thermal
	// constants (Eq. 19) plus the consolidation tables, safe to share
	// across goroutines without Clone.
	Snapshot = core.Snapshot
	// PodSnapshot is the pod-sharded hierarchical planning model: the
	// room partitioned into pods with per-pod consolidation tables and a
	// top-level allocator, for rooms past the whole-room table cap.
	PodSnapshot = core.PodSnapshot
	// PodOption configures NewPodSnapshot (pod size/count, tree depth,
	// build workers).
	PodOption = core.PodOption
	// Unit is one node of the recursive planner tree a PodSnapshot (or,
	// degenerately, a Snapshot) plans through: leaves own kinetic tables
	// over contiguous machine ranges, interior nodes water-fill load over
	// their children's Eq. 21–22 aggregates. Read-only.
	Unit = core.Unit
	// MaxLoadResult answers the dual budget question maxL(A, P_b).
	MaxLoadResult = core.MaxLoadResult
	// Method identifies one of the eight evaluation scenarios (Fig. 4).
	Method = baseline.Method
	// Planner produces plans for all eight scenarios.
	Planner = baseline.Planner
	// Engine is the concurrent plan-serving layer: an RCU-style
	// snapshot holder with a single-flight plan cache.
	Engine = engine.Engine
	// PlanRequest and PlanResponse are Engine.Plan's wire types.
	PlanRequest = engine.Request
	// PlanResponse is a served plan plus shed/degradation accounting.
	PlanResponse = engine.Response
	// PlanMode selects the exact or hierarchical planning path for one
	// request (ModeAuto picks by room size).
	PlanMode = engine.PlanMode
	// EngineStats is the engine's point-in-time cache and topology
	// counters (the /v1/stats wire form).
	EngineStats = engine.Stats
	// EngineOption configures engine construction (WithExactCacheKeys).
	EngineOption = engine.Option
	// MachineDelta is one machine's re-fitted Eq. 8 coefficients, the
	// unit of incremental snapshot maintenance (Snapshot.Patch,
	// Engine.InstallPatch).
	MachineDelta = core.MachineDelta
	// PreparedInstall is a fully built serving generation awaiting its
	// O(1) epoch-checked commit (Engine.PrepareInstall / PreparePatch).
	PreparedInstall = engine.PreparedInstall
	// ProfilingResult is a completed profiling run (fitted profile,
	// set-point calibration, and fit reports for Figs. 2–3).
	ProfilingResult = profiling.Result
	// FitReport compares a fitted model against the measurements that
	// produced it.
	FitReport = profiling.FitReport
	// SetPointCalibration maps desired supply temperatures to CRAC set
	// points (§IV-B).
	SetPointCalibration = profiling.SetPointCalibration
)

// The eight evaluation scenarios, numbered as in the paper's Fig. 4.
const (
	EvenNoACNoCons     = baseline.EvenNoACNoCons     // #1
	BottomUpNoACNoCons = baseline.BottomUpNoACNoCons // #2
	BottomUpNoACCons   = baseline.BottomUpNoACCons   // #3
	EvenACNoCons       = baseline.EvenACNoCons       // #4
	BottomUpACNoCons   = baseline.BottomUpACNoCons   // #5
	OptimalACNoCons    = baseline.OptimalACNoCons    // #6
	BottomUpACCons     = baseline.BottomUpACCons     // #7
	OptimalACCons      = baseline.OptimalACCons      // #8
)

// AllMethods lists the scenarios in paper order.
var AllMethods = baseline.AllMethods

// Plan-path selectors for PlanRequest.Mode.
const (
	ModeAuto  = engine.ModeAuto
	ModeExact = engine.ModeExact
	ModeHier  = engine.ModeHier
)

// HierThreshold is the room size at and above which an engine holding
// pod tables serves the consolidating optimum hierarchically in
// ModeAuto. It comes from the measured pod-sizing calibration curve
// (regenerated by `paperbench -podsize-sweep`).
var HierThreshold = engine.HierThreshold

// ErrInfeasible is returned when no plan can satisfy the constraints.
var ErrInfeasible = core.ErrInfeasible

// Typed serving errors from the plan engine; compare with errors.Is.
var (
	// ErrPlanOverloaded: the engine refused to start a computation
	// (in-flight bound hit, install in progress, or breaker open).
	ErrPlanOverloaded = engine.ErrOverloaded
	// ErrPlanNoPath: the request pinned a planning path the installed
	// state cannot serve.
	ErrPlanNoPath = engine.ErrNoPath
	// ErrPlanBadAvoid: the avoid list names a machine outside the room.
	ErrPlanBadAvoid = engine.ErrBadAvoid
	// ErrBadDelta: a drift batch named a machine outside the room, listed
	// one twice, or carried coefficients that fail profile validation.
	ErrBadDelta = core.ErrBadDelta
	// ErrStaleInstall: a prepared install was refused at commit because
	// another install published first; re-prepare and commit again
	// (Engine.InstallPatch does so automatically).
	ErrStaleInstall = engine.ErrStaleInstall
)

// NewOptimizer builds the practical planner for a profile; see
// core.NewOptimizer.
func NewOptimizer(p *Profile, opts ...PreprocessOption) (*Optimizer, error) {
	return core.NewOptimizer(p, opts...)
}

// NewPlanner builds the eight-scenario planner for a profile.
func NewPlanner(p *Profile) (*Planner, error) { return baseline.NewPlanner(p) }

// NewSnapshot freezes a profile into an immutable planning model; see
// core.NewSnapshot.
func NewSnapshot(p *Profile, epoch uint64, opts ...PreprocessOption) (*Snapshot, error) {
	return core.NewSnapshot(p, epoch, opts...)
}

// NewEngine builds a plan-serving engine over a planner's snapshot.
func NewEngine(pl *Planner) *Engine { return engine.New(pl) }

// NewEngineFromSnapshot builds a plan-serving engine directly on a
// frozen snapshot.
func NewEngineFromSnapshot(snap *Snapshot) (*Engine, error) {
	return engine.FromSnapshot(snap)
}

// NewEngineFromSnapshots builds a plan-serving engine over an exact
// snapshot, pod tables, or both published as one epoch.
func NewEngineFromSnapshots(snap *Snapshot, pods *PodSnapshot, opts ...EngineOption) (*Engine, error) {
	return engine.FromSnapshots(snap, pods, opts...)
}

// NewPodSnapshot partitions a room into pods and builds the per-pod
// consolidation tables in parallel; see core.NewPodSnapshot.
func NewPodSnapshot(p *Profile, epoch uint64, opts ...PodOption) (*PodSnapshot, error) {
	return core.NewPodSnapshot(p, epoch, opts...)
}

// WithExactCacheKeys keys the engine's plan cache by exact load bits
// instead of 0.1 %-of-capacity buckets.
func WithExactCacheKeys() EngineOption { return engine.WithExactCacheKeys() }

// WithMaxInFlight bounds concurrent plan computations; excess cache
// misses are shed with ErrPlanOverloaded instead of queued.
func WithMaxInFlight(k int) EngineOption { return engine.WithMaxInFlight(k) }

// Preprocess runs consolidation Algorithm 1 on a reduced instance in its
// compressed kinetic form (O(n² lg n) time, O(n²) memory, default cap
// core.DefaultMaxMachines machines).
func Preprocess(r Reduced, opts ...PreprocessOption) (*Preprocessed, error) {
	return core.Preprocess(r, opts...)
}

// PreprocessDense runs the dense paper-literal form of Algorithm 1
// (O(n³) tables, default cap core.DenseMaxMachines machines); kept as a
// reference for cross-checking and benchmarking.
func PreprocessDense(r Reduced, opts ...PreprocessOption) (*DensePreprocessed, error) {
	return core.PreprocessDense(r, opts...)
}

// WithMaxMachines overrides the Preprocess machine-count cap.
func WithMaxMachines(n int) PreprocessOption { return core.WithMaxMachines(n) }

// WithPreprocessWorkers bounds the preprocessing worker pool.
func WithPreprocessWorkers(w int) PreprocessOption { return core.WithPreprocessWorkers(w) }

// WithPatchSupport retains the crossing list Preprocess normally
// discards, enabling incremental Snapshot.Patch on the result (≈16 bytes
// per pairwise crossing of extra memory).
func WithPatchSupport() PreprocessOption { return core.WithPatchSupport() }

// WithPodSize sets the target machines per pod (default
// core.DefaultPodSize).
func WithPodSize(n int) PodOption { return core.WithPodSize(n) }

// WithPodCount sets the pod count directly instead of a target size.
func WithPodCount(p int) PodOption { return core.WithPodCount(p) }

// WithPodDepth sets the planner-tree depth: 2 is the classic pod split,
// 3 groups pods into ≈√p pods of pods for fleet-scale rooms. Values ≤ 0
// pick the calibrated depth for the room size.
func WithPodDepth(d int) PodOption { return core.WithPodDepth(d) }

// WithPodBuildWorkers bounds the parallel pod-table build pool; pod
// tables are byte-identical regardless of the worker count.
func WithPodBuildWorkers(w int) PodOption { return core.WithPodBuildWorkers(w) }
