GO ?= go

# ci is the tier-1 gate: formatting, vet, the repo's own static-analysis
# suite, race-enabled tests, a full build, and a small serving-bench
# smoke run. The race step guards the concurrent paths (the plan engine,
# the parallel kinetic preprocessing sweep, and the figures.Collect
# worker pool); lint enforces the determinism, unit-safety, and
# clone-discipline invariants the experiments depend on.
.PHONY: ci
ci: fmt-check vet lint race build serving-smoke

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs cooloptlint (see cmd/cooloptlint) over every package.
.PHONY: lint
lint:
	$(GO) run ./cmd/cooloptlint ./...

# fmt-check fails if any tracked Go file (fixtures included) is not gofmt'd.
.PHONY: fmt-check
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the consolidation scaling trajectory committed at the repo root.
.PHONY: consolidation-bench
consolidation-bench:
	$(GO) run ./cmd/paperbench -consolidation-bench BENCH_consolidation.json

# Refresh the concurrent plan-serving trajectory committed at the repo root.
.PHONY: serving-bench
serving-bench:
	$(GO) run ./cmd/paperbench -serving-bench BENCH_serving.json

# serving-smoke exercises the serving benchmark end-to-end at a small
# size so ci catches regressions without paying for the 4096 run.
.PHONY: serving-smoke
serving-smoke:
	$(GO) run ./cmd/paperbench -serving-bench /tmp/BENCH_serving_smoke.json -serving-max-n 64 -serving-queries 64
