GO ?= go

# ci is the tier-1 gate: formatting, vet, the repo's own static-analysis
# suite, race-enabled tests, a full build, and small serving-bench and
# hierarchy-bench smoke runs. The race step guards the concurrent paths
# (the plan engine, the parallel kinetic preprocessing and pod-table
# sweeps, and the figures.Collect worker pool); lint enforces the
# determinism, unit-safety, and clone-discipline invariants the
# experiments depend on; the hierarchy smoke enforces the pod planner's
# optimality-gap bound at a small size.
.PHONY: ci
ci: fmt-check vet lint race build serving-smoke hierarchy-smoke

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs cooloptlint (see cmd/cooloptlint) over every package.
.PHONY: lint
lint:
	$(GO) run ./cmd/cooloptlint ./...

# fmt-check fails if any tracked Go file (fixtures included) is not gofmt'd.
.PHONY: fmt-check
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the consolidation scaling trajectory committed at the repo root.
.PHONY: consolidation-bench
consolidation-bench:
	$(GO) run ./cmd/paperbench -consolidation-bench BENCH_consolidation.json

# Refresh the concurrent plan-serving trajectory committed at the repo root.
.PHONY: serving-bench
serving-bench:
	$(GO) run ./cmd/paperbench -serving-bench BENCH_serving.json

# serving-smoke exercises the serving benchmark end-to-end at a small
# size so ci catches regressions without paying for the 4096 run.
.PHONY: serving-smoke
serving-smoke:
	$(GO) run ./cmd/paperbench -serving-bench /tmp/BENCH_serving_smoke.json -serving-max-n 64 -serving-queries 64

# Refresh the pod-sharded hierarchical planning trajectory committed at
# the repo root (includes the 65536-machine point).
.PHONY: hierarchy-bench
hierarchy-bench:
	$(GO) run ./cmd/paperbench -hierarchy-bench BENCH_hierarchy.json

# hierarchy-smoke runs the hierarchy benchmark at a small size; it fails
# if the hierarchical planner's worst-case gap vs the exact optimum
# exceeds -hierarchy-gap-limit (default 5 %).
.PHONY: hierarchy-smoke
hierarchy-smoke:
	$(GO) run ./cmd/paperbench -hierarchy-bench /tmp/BENCH_hierarchy_smoke.json -hierarchy-max-n 256 -hierarchy-pod-size 32 -hierarchy-queries 64
