GO ?= go

# ci is the tier-1 gate: formatting, vet, the repo's own static-analysis
# suite, race-enabled tests, a full build, and small serving-bench,
# hierarchy-bench, and degraded-bench smoke runs. The race step guards
# the concurrent paths (the plan engine, the parallel kinetic
# preprocessing and pod-table sweeps, the figures.Collect worker pool,
# and the degraded-serving chaos hammer in internal/chaos); lint
# enforces the determinism, unit-safety, and clone-discipline invariants
# the experiments depend on plus the concurrency contracts of the
# serving layer (atomic-field discipline, typed-error chains,
# goroutine/timer hygiene, snapshot immutability), printing per-analyzer
# wall time; the hierarchy and degraded smokes enforce
# the pod planner's optimality-gap bounds at a small size; the
# degraded-chaos smoke asserts the overload-serving contract (only
# 200/400/503, Retry-After on every 503, readiness flipping across a
# slow install) over loopback HTTP; the incremental smokes gate the
# patch-install path — the small benchmark run checks Snapshot.Patch
# speed and bit-identity, and the incremental chaos smoke replays served
# answers against the exact generation their epoch claims while installs
# trickle; cover ratchets combined internal/core + internal/engine
# statement coverage against the committed coverage_baseline.json.
.PHONY: ci
ci: fmt-check vet lint race build serving-smoke hierarchy-smoke hier3-smoke degraded-smoke degraded-chaos-smoke incremental-smoke incremental-chaos-smoke cover

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the full nine-analyzer cooloptlint suite (see
# cmd/cooloptlint) over every package, with per-analyzer wall time on
# stderr and the committed (empty) baseline applied.
.PHONY: lint
lint:
	$(GO) run ./cmd/cooloptlint -timing -baseline lint_baseline.json ./...

# lint-json writes the machine-readable findings to lint_findings.json
# for editor / dashboard consumption. Exit code still 1 on findings.
.PHONY: lint-json
lint-json:
	$(GO) run ./cmd/cooloptlint -json -baseline lint_baseline.json ./... > lint_findings.json

# fmt-check fails if any tracked Go file (fixtures included) is not gofmt'd.
.PHONY: fmt-check
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the consolidation scaling trajectory committed at the repo root.
.PHONY: consolidation-bench
consolidation-bench:
	$(GO) run ./cmd/paperbench -consolidation-bench BENCH_consolidation.json

# Refresh the concurrent plan-serving trajectory committed at the repo root.
.PHONY: serving-bench
serving-bench:
	$(GO) run ./cmd/paperbench -serving-bench BENCH_serving.json

# serving-smoke exercises the serving benchmark end-to-end at a small
# size so ci catches regressions without paying for the 4096 run.
.PHONY: serving-smoke
serving-smoke:
	$(GO) run ./cmd/paperbench -serving-bench /tmp/BENCH_serving_smoke.json -serving-max-n 64 -serving-queries 64

# Refresh the pod-sharded hierarchical planning trajectory committed at
# the repo root (includes the 65536-machine point).
.PHONY: hierarchy-bench
hierarchy-bench:
	$(GO) run ./cmd/paperbench -hierarchy-bench BENCH_hierarchy.json

# hierarchy-smoke runs the hierarchy benchmark at a small size; it fails
# if the hierarchical planner's worst-case gap vs the exact optimum
# exceeds -hierarchy-gap-limit (default 5 %).
.PHONY: hierarchy-smoke
hierarchy-smoke:
	$(GO) run ./cmd/paperbench -hierarchy-bench /tmp/BENCH_hierarchy_smoke.json -hierarchy-max-n 256 -hierarchy-pod-size 32 -hierarchy-queries 64

# Refresh the depth-3 (pods-of-pods) trajectory committed at the repo
# root, including the 262144-machine point, with build-time and
# cold-plan latency gates alongside the usual gap gate. The gate values
# give ~3.5x headroom over the measured 35 s build / 1.4 s cold plan at
# n=262144 on the reference container.
.PHONY: hierarchy3-bench
hierarchy3-bench:
	$(GO) run ./cmd/paperbench -hierarchy-bench BENCH_hierarchy3.json -hierarchy-depth 3 -hierarchy-max-n 262144 -hierarchy-queries 64 -hierarchy-build-limit 120s -hierarchy-cold-plan-limit 5s

# hier3-smoke runs the same depth-3 planner tree at a small size: 8 pods
# of 32 under a 3-level tree, with the gap gate proving the recursive
# water-fill stays within bounds when interior nodes nest.
.PHONY: hier3-smoke
hier3-smoke:
	$(GO) run ./cmd/paperbench -hierarchy-bench /tmp/BENCH_hierarchy3_smoke.json -hierarchy-max-n 256 -hierarchy-pod-size 32 -hierarchy-depth 3 -hierarchy-queries 64

# podsize-sweep regenerates the embedded pod-sizing calibration curve
# (internal/core/podsize_calibration.json) from measurements on this
# hardware: every (pod size, depth) candidate per room size, keeping the
# fastest cold plan that fits the build and gap budgets.
.PHONY: podsize-sweep
podsize-sweep:
	$(GO) run ./cmd/paperbench -podsize-sweep internal/core/podsize_calibration.json -podsize-sweep-max-n 262144

# Refresh the degraded-planning trajectory committed at the repo root
# (n=4096, 16 pods: pod-local vs flat degraded re-planning with the
# ≥10× speedup and ≤1 %/5 % gap gates).
.PHONY: degraded-bench
degraded-bench:
	$(GO) run ./cmd/paperbench -degraded-bench BENCH_degraded.json

# degraded-smoke runs the degraded benchmark at a small size. The gap
# limits are slightly looser than the 4096-point defaults: with only 4
# pods of 64 machines, single-machine failures weigh proportionally more
# than they do at the committed trajectory's scale.
.PHONY: degraded-smoke
degraded-smoke:
	$(GO) run ./cmd/paperbench -degraded-bench /tmp/BENCH_degraded_smoke.json -degraded-n 256 -degraded-pods 4 -degraded-gap-mean-limit 0.02 -degraded-speedup-floor 2

# degraded-chaos-smoke hammers a pod-only engine's avoid= surface over
# loopback HTTP through an overload window and a slow snapshot install;
# any serving-contract violation fails it.
.PHONY: degraded-chaos-smoke
degraded-chaos-smoke:
	$(GO) run ./cmd/paperbench -degraded-chaos -degraded-n 128 -degraded-pods 4

# Refresh the incremental snapshot-maintenance trajectory committed at
# the repo root (n=4096: PodSnapshot.Patch vs full rebuild with the ≥20×
# speedup gate at k=16 and the <1 ms pipelined-commit gate).
.PHONY: incremental-bench
incremental-bench:
	$(GO) run ./cmd/paperbench -incremental-bench BENCH_incremental.json

# incremental-smoke runs the incremental benchmark at a small size. The
# speedup floor is looser than the committed trajectory's: with 256
# machines in 8 pods a 16-machine batch touches most pods, so the
# locality win is proportionally smaller than at 4096.
.PHONY: incremental-smoke
incremental-smoke:
	$(GO) run ./cmd/paperbench -incremental-bench /tmp/BENCH_incremental_smoke.json -incremental-n 256 -incremental-pods 8 -incremental-speedup-floor 2

# incremental-chaos-smoke trickles pipelined patch installs through a
# live engine while exact, degraded, and budget workers replay every
# sampled answer bit-for-bit against the generation its epoch claims;
# any mixed-epoch answer, readiness flap, or shed query fails it.
.PHONY: incremental-chaos-smoke
incremental-chaos-smoke:
	$(GO) run ./cmd/paperbench -incremental-chaos -incremental-n 64 -incremental-pods 4

# cover runs the full test suite with atomic coverage and ratchets the
# combined internal/core + internal/engine statement coverage against
# the committed baseline (see cmd/covergate). Refresh the floor after a
# genuine coverage improvement with:
#   go run ./cmd/covergate -profile /tmp/coolopt_cover.out -write-baseline
.PHONY: cover
cover:
	$(GO) test -count=1 -covermode=atomic -coverprofile=/tmp/coolopt_cover.out ./...
	$(GO) run ./cmd/covergate -profile /tmp/coolopt_cover.out -baseline coverage_baseline.json
