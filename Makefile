GO ?= go

# ci is the tier-1 gate: vet, race-enabled tests, and a full build.
# The race step exists to guard the concurrent paths (the parallel
# kinetic preprocessing sweep and the figures.Collect worker pool).
.PHONY: ci
ci: vet race build

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the consolidation scaling trajectory committed at the repo root.
.PHONY: consolidation-bench
consolidation-bench:
	$(GO) run ./cmd/paperbench -consolidation-bench BENCH_consolidation.json
