package coolopt

import (
	"fmt"

	"coolopt/internal/baseline"
	"coolopt/internal/core"
	"coolopt/internal/engine"
	"coolopt/internal/mathx"
	"coolopt/internal/profiling"
	"coolopt/internal/room"
	"coolopt/internal/sim"
	"coolopt/internal/telemetry"
	"coolopt/internal/units"
)

// System bundles a simulated machine room with its profiled model and the
// eight-scenario planner — everything needed to reproduce the paper's
// evaluation end to end.
type System struct {
	sim       *sim.Simulator
	profiling *profiling.Result
	planner   *baseline.Planner
	engine    *engine.Engine
	opts      options
}

type options struct {
	seed      int64
	machines  int
	marginC   float64
	settleS   float64
	measureS  int
	rackSpec  *room.RackSpec
	gradient  *gradientOption
	jitter    *float64
	row       *rowOption
	noise     *noiseOption
	copScale  float64
	tMaxC     float64
	preOpts   []core.PreprocessOption
	hier      bool
	podOpts   []core.PodOption
	engOpts   []engine.Option
	profiling profiling.Config
}

// Option configures NewSystem.
type Option interface {
	apply(*options)
}

type seedOption int64

func (o seedOption) apply(opts *options) { opts.seed = int64(o) }

// WithSeed sets the seed driving rack jitter and sensor noise (default 1).
func WithSeed(seed int64) Option { return seedOption(seed) }

type machinesOption int

func (o machinesOption) apply(opts *options) { opts.machines = int(o) }

// WithMachines sets the rack size (default 20, the paper's testbed).
func WithMachines(n int) Option { return machinesOption(n) }

type marginOption float64

func (o marginOption) apply(opts *options) { opts.marginC = float64(o) }

// WithSafetyMargin sets the guard band in °C subtracted from every
// commanded supply temperature to absorb model error (default 2.5).
func WithSafetyMargin(c float64) Option { return marginOption(c) }

type settleOption float64

func (o settleOption) apply(opts *options) { opts.settleS = float64(o) }

// WithSettleSeconds sets the per-scenario settling horizon (default 1200).
func WithSettleSeconds(s float64) Option { return settleOption(s) }

type rackSpecOption room.RackSpec

func (o rackSpecOption) apply(opts *options) {
	spec := room.RackSpec(o)
	opts.rackSpec = &spec
	opts.machines = spec.N
}

type gradientOption struct{ bottom, top float64 }

func (o gradientOption) apply(opts *options) {
	opts.gradient = &o
}

// WithGradient sets the rack's supply-air gradient: the fraction of
// intake drawn straight from the CRAC supply at the bottom and top slots
// (defaults 0.98 and 0.60). Equal values make the room thermally uniform.
func WithGradient(bottom, top float64) Option { return gradientOption{bottom: bottom, top: top} }

type jitterOption float64

func (o jitterOption) apply(opts *options) { v := float64(o); opts.jitter = &v }

// WithJitter sets the relative per-machine parameter variation (default
// 0.07; 0 makes machines physically identical).
func WithJitter(j float64) Option { return jitterOption(j) }

type rowOption struct{ racks, perRack int }

func (o rowOption) apply(opts *options) {
	opts.row = &o
	opts.machines = o.racks * o.perRack
}

// WithRow builds a row of racks instead of a single rack: racks racks of
// perRack machines each, with racks farther from the CRAC receiving a
// weaker share of supply air — the paper's across-racks setting.
func WithRow(racks, perRack int) Option { return rowOption{racks: racks, perRack: perRack} }

type copScaleOption float64

func (o copScaleOption) apply(opts *options) { opts.copScale = float64(o) }

type noiseOption struct{ tempC, powerW float64 }

func (o noiseOption) apply(opts *options) { opts.noise = &o }

// WithSensorNoise scales the measurement chain: tempC is the CPU-sensor
// noise standard deviation in °C and powerW the power-meter noise in
// Watts (defaults 0.4 and 0.8; pass negative values to disable noise).
func WithSensorNoise(tempC, powerW float64) Option {
	return noiseOption{tempC: tempC, powerW: powerW}
}

// WithCOPScale scales the CRAC's coefficient-of-performance curve
// (default 1). Values above 1 model a more efficient cooling plant,
// shrinking the cooling share of total power.
func WithCOPScale(scale float64) Option { return copScaleOption(scale) }

type preprocessOption []core.PreprocessOption

func (o preprocessOption) apply(opts *options) {
	opts.preOpts = append(opts.preOpts, o...)
}

// WithPreprocess forwards consolidation preprocessing options — machine
// cap and worker pool (WithMaxMachines, WithPreprocessWorkers) — to the
// snapshot built during NewSystem. Required for rooms larger than the
// default preprocessing cap.
func WithPreprocess(opts ...PreprocessOption) Option { return preprocessOption(opts) }

type hierarchyOption []core.PodOption

func (o hierarchyOption) apply(opts *options) {
	opts.hier = true
	opts.podOpts = append(opts.podOpts, o...)
}

// WithHierarchy additionally builds pod-sharded consolidation tables
// (WithPodSize, WithPodCount, WithPodBuildWorkers) and installs them in
// the engine alongside the exact snapshot, enabling the hierarchical
// planning path for large rooms.
func WithHierarchy(opts ...PodOption) Option { return hierarchyOption(opts) }

type engineOptsOption []engine.Option

func (o engineOptsOption) apply(opts *options) {
	opts.engOpts = append(opts.engOpts, o...)
}

// WithEngineOptions forwards serving options (WithMaxInFlight,
// WithExactCacheKeys, …) to the plan engine built during NewSystem.
func WithEngineOptions(opts ...EngineOption) Option { return engineOptsOption(opts) }

// NewSystem builds the simulated machine room, runs the full profiling
// protocol against it, and returns a System ready to evaluate scenarios.
func NewSystem(opts ...Option) (*System, error) {
	o := options{
		seed:     1,
		machines: 20,
		marginC:  2.5,
		settleS:  1200,
		measureS: 120,
		tMaxC:    sim.DefaultTMaxC,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.machines <= 0 {
		return nil, fmt.Errorf("coolopt: machine count %d must be positive", o.machines)
	}
	if o.marginC < 0 {
		return nil, fmt.Errorf("coolopt: safety margin %v must be non-negative", o.marginC)
	}

	spec := room.DefaultRackSpec()
	if o.rackSpec != nil {
		spec = *o.rackSpec
	}
	spec.N = o.machines
	spec.Seed = o.seed
	if o.gradient != nil {
		spec.SupplyFracBottom = o.gradient.bottom
		spec.SupplyFracTop = o.gradient.top
	}
	if o.jitter != nil {
		spec.Jitter = *o.jitter
	}
	var (
		rack *room.Rack
		err  error
	)
	if o.row != nil {
		rowSpec := room.DefaultRowSpec()
		rowSpec.Racks = o.row.racks
		spec.N = o.row.perRack
		rowSpec.Base = spec
		rack, err = room.GenRow(rowSpec)
	} else {
		rack, err = room.GenRack(spec)
	}
	if err != nil {
		return nil, err
	}
	crac := sim.DefaultCRAC()
	if o.copScale != 0 {
		if o.copScale < 0 {
			return nil, fmt.Errorf("coolopt: COP scale %v must be positive", o.copScale)
		}
		crac.COP.A *= o.copScale
		crac.COP.B *= o.copScale
		crac.COP.C *= o.copScale
	}
	// Scale the CRAC flow with rack size so larger rooms stay
	// physical: machines pull ≈0.01 m³/s each, plus 50 % bypass.
	crac.Flow = 0.015 * float64(o.machines)
	simCfg := sim.Config{
		Rack:      rack,
		CRAC:      crac,
		SetPointC: sim.DefaultSetPointC,
		Seed:      o.seed + 1,
		BaseHeatW: sim.DefaultBaseHeatW * float64(o.machines) / 20,
	}
	if o.noise != nil {
		simCfg.TempNoiseC = o.noise.tempC
		simCfg.PowerNoiseW = o.noise.powerW
	}
	s, err := sim.New(simCfg)
	if err != nil {
		return nil, err
	}

	profCfg := o.profiling
	profCfg.Sim = s
	if profCfg.TMaxC == 0 {
		profCfg.TMaxC = o.tMaxC
	}
	if profCfg.TAcMinC == 0 && profCfg.TAcMaxC == 0 {
		profCfg.TAcMinC = crac.SupplyMin
		profCfg.TAcMaxC = crac.SupplyMax
	}
	res, err := profiling.Run(profCfg)
	if err != nil {
		return nil, fmt.Errorf("coolopt: profiling: %w", err)
	}
	snap, err := core.NewSnapshot(res.Profile, 0, o.preOpts...)
	if err != nil {
		return nil, fmt.Errorf("coolopt: snapshot: %w", err)
	}
	planner, err := baseline.NewPlannerOn(snap)
	if err != nil {
		return nil, fmt.Errorf("coolopt: planner: %w", err)
	}
	eng := engine.New(planner, o.engOpts...)
	if o.hier {
		pods, err := core.NewPodSnapshot(res.Profile, 0, o.podOpts...)
		if err != nil {
			return nil, fmt.Errorf("coolopt: pod tables: %w", err)
		}
		if err := eng.InstallHierarchical(snap, pods); err != nil {
			return nil, fmt.Errorf("coolopt: hierarchy: %w", err)
		}
	}
	return &System{sim: s, profiling: res, planner: planner, engine: eng, opts: o}, nil
}

// Clone returns a System running its own copy of the simulated room while
// sharing the profiled model and planner (both read-only after
// construction). The clone starts from this system's current physical
// state; its sensor-noise streams are derived from seed, so clones with
// equal seeds produce identical measurements. Use clones to evaluate
// scenarios concurrently — a System itself is not safe for concurrent
// Evaluate/Execute calls.
func (s *System) Clone(seed int64) *System {
	return &System{
		sim:       s.sim.Clone(seed),
		profiling: s.profiling,
		planner:   s.planner,
		engine:    s.engine,
		opts:      s.opts,
	}
}

// Sim exposes the underlying simulator.
func (s *System) Sim() *sim.Simulator { return s.sim }

// Profiling returns the profiling result (profile, calibration, fits).
func (s *System) Profiling() *ProfilingResult { return s.profiling }

// Profile returns the fitted room model.
func (s *System) Profile() *Profile { return s.profiling.Profile }

// Planner returns the eight-scenario planner.
func (s *System) Planner() *Planner { return s.planner }

// Snapshot returns the frozen planning model built during NewSystem —
// safe to share across goroutines without Clone.
func (s *System) Snapshot() *Snapshot { return s.planner.Snapshot() }

// Engine returns the concurrent plan-serving engine over the system's
// snapshot. Clones share the engine: it only touches the frozen model,
// never the simulated room.
func (s *System) Engine() *Engine { return s.engine }

// Pods returns the pod-sharded consolidation tables built under
// WithHierarchy, or nil when the system plans exactly only.
func (s *System) Pods() *PodSnapshot { return s.engine.Pods() }

// Size returns the number of machines.
func (s *System) Size() int { return s.sim.Size() }

// Measurement is the steady-state outcome of running one scenario at one
// load point on the simulated room.
type Measurement struct {
	// Method and LoadPct identify the scenario and operating point.
	Method  Method
	LoadPct float64
	// TotalW is the room's metered total power (servers + CRAC).
	TotalW units.Watts
	// ServerW and CoolW decompose it.
	ServerW units.Watts
	CoolW   units.Watts
	// SupplyC is the achieved CRAC supply temperature; PlanTAcC is what
	// the plan asked for (before the safety margin).
	SupplyC  units.Celsius
	PlanTAcC units.Celsius
	// MaxCPUC is the hottest ground-truth CPU temperature observed
	// during the measurement window; Violated reports whether it
	// exceeded T_max.
	MaxCPUC  units.Celsius
	Violated bool
	// PredictedW is what the fitted model expected the plan to draw
	// (Eq. 23 accounting) — compare with TotalW to judge model error.
	PredictedW units.Watts
	// MachinesOn counts powered-on machines.
	MachinesOn int
	// CarriedLoad is the total utilization actually applied — the
	// throughput constraint check.
	CarriedLoad float64
}

// Evaluate plans one scenario at loadFrac (fraction of total cluster
// capacity, 0–1), applies it to the room, waits for steady state, and
// returns averaged measurements.
func (s *System) Evaluate(m Method, loadFrac float64) (*Measurement, error) {
	if loadFrac < 0 || loadFrac > 1 {
		return nil, fmt.Errorf("coolopt: load fraction %v outside [0, 1]", loadFrac)
	}
	load := loadFrac * float64(s.Size())
	plan, err := s.planner.Plan(m, load)
	if err != nil {
		return nil, err
	}
	return s.Execute(m, plan, loadFrac)
}

// Apply pushes a plan onto the room without waiting: machines power on
// before taking load, unload before powering off, and the CRAC set point
// is chosen to command the plan's supply temperature (minus the safety
// margin) through the profiled calibration.
func (s *System) Apply(plan *Plan) error {
	onSet := make(map[int]bool, len(plan.On))
	for _, i := range plan.On {
		onSet[i] = true
	}
	for i := 0; i < s.Size(); i++ {
		if onSet[i] {
			if err := s.sim.SetPower(i, true); err != nil {
				return err
			}
		}
	}
	loads := make([]float64, len(plan.Loads))
	for i, l := range plan.Loads {
		// Absorb closed-form floating-point slop at the box bounds;
		// anything beyond tolerance is a real planning bug.
		if l < -1e-6 || l > 1+1e-6 {
			return fmt.Errorf("coolopt: plan load %v for machine %d outside [0, 1]", l, i)
		}
		loads[i] = mathx.Clamp(l, 0, 1)
	}
	if err := s.sim.SetLoads(loads); err != nil {
		return err
	}
	for i := 0; i < s.Size(); i++ {
		if !onSet[i] {
			if err := s.sim.SetPower(i, false); err != nil {
				return err
			}
		}
	}

	profile := s.Profile()
	var predictedW units.Watts
	for _, i := range plan.On {
		predictedW += profile.ServerPower(plan.Loads[i])
	}
	desired := plan.TAcC - s.SafetyMargin()
	if desired < units.Celsius(profile.TAcMinC) {
		desired = units.Celsius(profile.TAcMinC)
	}
	s.sim.SetSetPoint(float64(s.profiling.Calibration.SetPointFor(desired, predictedW)))
	return nil
}

// SafetyMargin returns the guard band in °C applied to commanded supply
// temperatures.
func (s *System) SafetyMargin() units.Celsius { return units.Celsius(s.opts.marginC) }

// Execute applies an explicit plan to the room, waits for steady state,
// and measures.
func (s *System) Execute(m Method, plan *Plan, loadFrac float64) (*Measurement, error) {
	if err := s.Apply(plan); err != nil {
		return nil, err
	}
	s.sim.Run(s.opts.settleS)

	// Measurement window: tail averages over measureS seconds.
	var totalTr, servTr, coolTr telemetry.Trace
	maxCPU := -1e9
	for k := 0; k < s.opts.measureS; k++ {
		s.sim.Step()
		var serv float64
		for i := 0; i < s.Size(); i++ {
			serv += s.sim.MeasuredServerPower(i)
		}
		cool := s.sim.MeasuredCRACPower()
		servTr.Append(s.sim.Time(), serv)
		coolTr.Append(s.sim.Time(), cool)
		totalTr.Append(s.sim.Time(), serv+cool)
		if t := s.sim.MaxTrueCPUTemp(); t > maxCPU {
			maxCPU = t
		}
	}

	n := s.opts.measureS
	return &Measurement{
		Method:      m,
		LoadPct:     loadFrac * 100,
		TotalW:      units.Watts(totalTr.Tail(n)),
		ServerW:     units.Watts(servTr.Tail(n)),
		CoolW:       units.Watts(coolTr.Tail(n)),
		SupplyC:     units.Celsius(s.sim.Supply()),
		PlanTAcC:    plan.TAcC,
		PredictedW:  s.predictedPower(plan),
		MaxCPUC:     units.Celsius(maxCPU),
		Violated:    maxCPU > s.Profile().TMaxC,
		MachinesOn:  len(plan.On),
		CarriedLoad: plan.TotalLoad(),
	}, nil
}

// predictedPower is the model's expectation for an executed plan: server
// power per Eq. 9 over the on set plus cooling per Eq. 10 at the supply
// temperature actually commanded (plan target minus the guard band).
func (s *System) predictedPower(plan *Plan) units.Watts {
	profile := s.Profile()
	desired := plan.TAcC - s.SafetyMargin()
	if desired < units.Celsius(profile.TAcMinC) {
		desired = units.Celsius(profile.TAcMinC)
	}
	total := profile.CoolingPower(desired)
	for _, i := range plan.On {
		total += profile.ServerPower(plan.Loads[i])
	}
	return total
}

// Sweep evaluates every given method at every load fraction and returns
// the measurements in method-major order.
func (s *System) Sweep(methods []Method, loadFracs []float64) ([]Measurement, error) {
	out := make([]Measurement, 0, len(methods)*len(loadFracs))
	for _, m := range methods {
		for _, lf := range loadFracs {
			meas, err := s.Evaluate(m, lf)
			if err != nil {
				return nil, fmt.Errorf("coolopt: %v at %.0f%%: %w", m, lf*100, err)
			}
			out = append(out, *meas)
		}
	}
	return out, nil
}
