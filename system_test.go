package coolopt_test

import (
	"math"
	"sync"
	"testing"

	"coolopt"
)

// sharedSystem caches one profiled room for the whole test file; building
// it replays the full profiling protocol.
var (
	sysOnce sync.Once
	sysInst *coolopt.System
	sysErr  error
)

func sharedSystem(t *testing.T) *coolopt.System {
	t.Helper()
	sysOnce.Do(func() {
		sysInst, sysErr = coolopt.NewSystem()
	})
	if sysErr != nil {
		t.Fatalf("NewSystem: %v", sysErr)
	}
	return sysInst
}

func TestNewSystemDefaults(t *testing.T) {
	s := sharedSystem(t)
	if s.Size() != 20 {
		t.Fatalf("Size = %d, want the paper's 20-machine testbed", s.Size())
	}
	if err := s.Profile().Validate(); err != nil {
		t.Fatalf("fitted profile invalid: %v", err)
	}
	if len(s.Profile().Machines) != 20 {
		t.Fatalf("profile covers %d machines", len(s.Profile().Machines))
	}
}

func TestNewSystemOptionValidation(t *testing.T) {
	if _, err := coolopt.NewSystem(coolopt.WithMachines(0)); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := coolopt.NewSystem(coolopt.WithSafetyMargin(-1)); err == nil {
		t.Fatal("negative margin accepted")
	}
}

func TestEvaluateInputValidation(t *testing.T) {
	s := sharedSystem(t)
	if _, err := s.Evaluate(coolopt.OptimalACCons, -0.1); err == nil {
		t.Fatal("negative load fraction accepted")
	}
	if _, err := s.Evaluate(coolopt.OptimalACCons, 1.5); err == nil {
		t.Fatal("load fraction above 1 accepted")
	}
}

func TestEvaluateMeasurementFields(t *testing.T) {
	s := sharedSystem(t)
	m, err := s.Evaluate(coolopt.OptimalACCons, 0.5)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m.Method != coolopt.OptimalACCons || m.LoadPct != 50 {
		t.Fatalf("identity fields wrong: %+v", m)
	}
	if m.TotalW <= 0 || m.ServerW <= 0 || m.CoolW <= 0 {
		t.Fatalf("non-positive powers: %+v", m)
	}
	if math.Abs(float64(m.TotalW-(m.ServerW+m.CoolW))) > 1 {
		t.Fatalf("total %v ≠ servers %v + cooling %v", m.TotalW, m.ServerW, m.CoolW)
	}
	if want := 0.5 * float64(s.Size()); math.Abs(m.CarriedLoad-want) > 1e-6 {
		t.Fatalf("carried load %v, want %v — throughput constraint broken", m.CarriedLoad, want)
	}
	if m.MachinesOn <= 0 || m.MachinesOn > s.Size() {
		t.Fatalf("machines on = %d", m.MachinesOn)
	}
}

// TestNoTemperatureViolations is the paper's §IV-B verification: across
// every scenario and load, no CPU may exceed T_max at steady state.
func TestNoTemperatureViolations(t *testing.T) {
	s := sharedSystem(t)
	for _, m := range coolopt.AllMethods {
		for _, lf := range []float64{0.2, 0.5, 0.8, 1.0} {
			meas, err := s.Evaluate(m, lf)
			if err != nil {
				t.Fatalf("%v at %.0f%%: %v", m, lf*100, err)
			}
			if meas.Violated {
				t.Errorf("%v at %.0f%%: max CPU %.2f °C exceeds T_max %.1f",
					m, lf*100, meas.MaxCPUC, s.Profile().TMaxC)
			}
		}
	}
}

// TestPaperHeadlineOrdering checks the qualitative results of §IV-B on
// the measured (not modeled) power.
func TestPaperHeadlineOrdering(t *testing.T) {
	s := sharedSystem(t)
	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	sum := make(map[coolopt.Method]float64)
	for _, lf := range loads {
		row := make(map[coolopt.Method]float64)
		for _, m := range coolopt.AllMethods {
			meas, err := s.Evaluate(m, lf)
			if err != nil {
				t.Fatalf("%v at %.0f%%: %v", m, lf*100, err)
			}
			row[m] = float64(meas.TotalW)
			sum[m] += float64(meas.TotalW)
		}
		// Consolidation helps (Fig. 5): #3 ≤ #2 and #7 ≤ #5, with a
		// measurement-noise tolerance.
		if row[coolopt.BottomUpNoACCons] > row[coolopt.BottomUpNoACNoCons]*1.02 {
			t.Errorf("load %.0f%%: consolidation #3 (%v W) worse than #2 (%v W)",
				lf*100, row[coolopt.BottomUpNoACCons], row[coolopt.BottomUpNoACNoCons])
		}
		// AC control helps (#4 ≤ #1).
		if row[coolopt.EvenACNoCons] > row[coolopt.EvenNoACNoCons]*1.02 {
			t.Errorf("load %.0f%%: AC control #4 (%v W) worse than #1 (%v W)",
				lf*100, row[coolopt.EvenACNoCons], row[coolopt.EvenNoACNoCons])
		}
		// Optimal never loses to the bottom-up baseline by more than
		// noise (Figs. 7–8).
		if row[coolopt.OptimalACNoCons] > row[coolopt.BottomUpACNoCons]*1.02 {
			t.Errorf("load %.0f%%: #6 (%v W) worse than #5 (%v W)",
				lf*100, row[coolopt.OptimalACNoCons], row[coolopt.BottomUpACNoCons])
		}
		if row[coolopt.OptimalACCons] > row[coolopt.BottomUpACCons]*1.03 {
			t.Errorf("load %.0f%%: #8 (%v W) worse than #7 (%v W)",
				lf*100, row[coolopt.OptimalACCons], row[coolopt.BottomUpACCons])
		}
	}
	// The holistic solution (#8) is the overall winner, saving a
	// meaningful fraction versus the best baseline (#7) on average —
	// the paper reports 7 %; require at least 3 %.
	saving := (sum[coolopt.BottomUpACCons] - sum[coolopt.OptimalACCons]) / sum[coolopt.BottomUpACCons]
	if saving < 0.03 {
		t.Fatalf("average #8-vs-#7 saving = %.1f%%, want ≥ 3%%", saving*100)
	}
	for _, m := range coolopt.AllMethods {
		if m == coolopt.OptimalACCons {
			continue
		}
		if sum[coolopt.OptimalACCons] > sum[m]*1.001 {
			t.Errorf("#8 average (%v) worse than %v (%v)", sum[coolopt.OptimalACCons], m, sum[m])
		}
	}
}

func TestConsolidationBenefitShrinksWithLoad(t *testing.T) {
	// Fig. 6: consolidation gives the most benefit at low load.
	s := sharedSystem(t)
	gap := func(lf float64) float64 {
		t.Helper()
		with, err := s.Evaluate(coolopt.BottomUpACCons, lf)
		if err != nil {
			t.Fatal(err)
		}
		without, err := s.Evaluate(coolopt.BottomUpACNoCons, lf)
		if err != nil {
			t.Fatal(err)
		}
		return float64(without.TotalW - with.TotalW)
	}
	low := gap(0.1)
	high := gap(0.9)
	if low <= high {
		t.Fatalf("consolidation benefit at 10%% (%v W) not larger than at 90%% (%v W)", low, high)
	}
}

func TestSweepShape(t *testing.T) {
	s := sharedSystem(t)
	ms, err := s.Sweep([]coolopt.Method{coolopt.EvenACNoCons, coolopt.OptimalACCons}, []float64{0.2, 0.6})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(ms) != 4 {
		t.Fatalf("Sweep returned %d measurements, want 4", len(ms))
	}
	if ms[0].Method != coolopt.EvenACNoCons || ms[3].Method != coolopt.OptimalACCons {
		t.Fatal("Sweep order not method-major")
	}
	if ms[0].LoadPct != 20 || ms[1].LoadPct != 60 {
		t.Fatal("Sweep load order wrong")
	}
}

func TestSmallRoomWorks(t *testing.T) {
	s, err := coolopt.NewSystem(coolopt.WithMachines(8), coolopt.WithSeed(7))
	if err != nil {
		t.Fatalf("NewSystem(8): %v", err)
	}
	m, err := s.Evaluate(coolopt.OptimalACCons, 0.5)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m.Violated {
		t.Fatalf("small room violates T_max: %+v", m)
	}
}

func TestSystemDeterminism(t *testing.T) {
	a, err := coolopt.NewSystem(coolopt.WithMachines(8), coolopt.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := coolopt.NewSystem(coolopt.WithMachines(8), coolopt.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ma, err := a.Evaluate(coolopt.BottomUpACCons, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.Evaluate(coolopt.BottomUpACCons, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if ma.TotalW != mb.TotalW || ma.SupplyC != mb.SupplyC {
		t.Fatalf("same seed diverged: %+v vs %+v", ma, mb)
	}
}

func TestWithRowBuildsMultiRackSystem(t *testing.T) {
	s, err := coolopt.NewSystem(coolopt.WithRow(2, 6), coolopt.WithSeed(5))
	if err != nil {
		t.Fatalf("NewSystem(WithRow): %v", err)
	}
	if s.Size() != 12 {
		t.Fatalf("Size = %d, want 12", s.Size())
	}
	m, err := s.Evaluate(coolopt.OptimalACCons, 0.5)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if m.Violated {
		t.Fatalf("row system violates T_max: %+v", m)
	}
}

func TestWithCOPScaleValidation(t *testing.T) {
	if _, err := coolopt.NewSystem(coolopt.WithCOPScale(-1)); err == nil {
		t.Fatal("negative COP scale accepted")
	}
}

func TestWithGradientUniformRoomProfiles(t *testing.T) {
	s, err := coolopt.NewSystem(
		coolopt.WithMachines(6),
		coolopt.WithGradient(0.9, 0.9),
		coolopt.WithJitter(0),
		coolopt.WithSeed(2),
	)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// With no gradient and no jitter the fitted K values must be close
	// across machines; the residual spread comes from the rack's
	// height-dependent air flow, which WithGradient does not flatten.
	p := s.Profile()
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < p.Size(); i++ {
		k := p.K(i)
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	if (hi-lo)/lo > 0.05 {
		t.Fatalf("uniform room K spread %.3f–%.3f too wide", lo, hi)
	}
}

func TestMeasurementPredictionTracksMeters(t *testing.T) {
	s := sharedSystem(t)
	m, err := s.Evaluate(coolopt.OptimalACNoCons, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if m.PredictedW <= 0 {
		t.Fatalf("PredictedW = %v", m.PredictedW)
	}
	if rel := math.Abs(float64(m.TotalW-m.PredictedW)) / float64(m.PredictedW); rel > 0.25 {
		t.Fatalf("model prediction %.0f W vs metered %.0f W (%.0f%%)", m.PredictedW, m.TotalW, rel*100)
	}
}

func TestApplyRejectsCorruptPlan(t *testing.T) {
	s := sharedSystem(t)
	loads := make([]float64, s.Size())
	loads[0] = 3 // far outside [0, 1]
	plan := &coolopt.Plan{On: []int{0}, Loads: loads, TAcC: 20}
	if err := s.Apply(plan); err == nil {
		t.Fatal("corrupt plan accepted")
	}
}
