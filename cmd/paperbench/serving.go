package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"coolopt"
	"coolopt/internal/clock"
)

// This file implements -serving-bench: a throughput measurement of the
// concurrent plan-serving layer (internal/engine) written as a JSON
// trajectory file (BENCH_serving.json). Each point freezes a synthetic
// profile into an immutable snapshot and hammers the engine from a
// fixed goroutine pool, so successive PRs can diff serving throughput
// the same way BENCH_consolidation.json tracks preprocessing cost.

// servingPoint is one room size of the trajectory. QPS figures are
// queries per second sustained by the whole goroutine pool.
type servingPoint struct {
	N          int `json:"n"`
	Goroutines int `json:"goroutines"`
	// SolveQueries is the query count used for the two expensive
	// operations (cold plans and maxload): a cold solve costs O(n²)-ish,
	// so the count scales down with n to keep the trajectory cheap to
	// regenerate.
	SolveQueries int `json:"solve_queries"`
	// SnapshotBuildNS is the cost of freezing the profile: deep copy,
	// validation, and the full consolidation preprocessing run.
	SnapshotBuildNS int64 `json:"snapshot_build_ns"`
	// Pods and PodBuildNS report the pod-sharded tables installed
	// alongside the exact snapshot at n ≥ coolopt.HierThreshold, where
	// the engine answers the consolidating optimum hierarchically.
	Pods       int   `json:"pods,omitempty"`
	PodBuildNS int64 `json:"pod_build_ns,omitempty"`
	// PlanColdQPS uses a distinct load per query, defeating the plan
	// cache: every query runs the Eq. 21–23 solve. PlanHotQPS cycles a
	// small set of loads so most queries are cache or single-flight
	// hits. PlanZipfQPS draws loads from a Zipf popularity curve over
	// 256 demand levels — the production-shaped mix of hits and misses.
	PlanColdQPS float64 `json:"plan_cold_qps"`
	PlanHotQPS  float64 `json:"plan_hot_qps"`
	PlanZipfQPS float64 `json:"plan_zipf_qps"`
	// MaxLoadQPS answers §III-B budget queries; ConsolidateQPS answers
	// raw Eq. 21–22 table queries through the persistent front-set.
	MaxLoadQPS     float64 `json:"maxload_qps"`
	ConsolidateQPS float64 `json:"consolidate_qps"`
}

// servingBench is the file schema.
type servingBench struct {
	GeneratedUnix int64          `json:"generated_unix"`
	QueriesPerOp  int            `json:"queries_per_op"`
	Points        []servingPoint `json:"points"`
}

// hammer runs q queries across g goroutines pulling from a shared
// counter and returns the pool's aggregate queries-per-second.
func hammer(g, q int, fn func(i int) error) (float64, error) {
	var next atomic.Int64
	errs := make(chan error, g)
	start := benchClock.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= q {
					return
				}
				if err := fn(i); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	secs := clock.Since(benchClock, start).Seconds()
	if secs <= 0 {
		secs = 1e-9 // fake clocks can report zero elapsed time
	}
	return float64(q) / secs, nil
}

// runServingBench measures sizes {64, 1024, 4096} up to maxN with
// goroutines concurrent clients and writes the trajectory to path.
func runServingBench(out io.Writer, path string, goroutines, queries, maxN int) error {
	if goroutines < 1 {
		return fmt.Errorf("serving bench needs at least 1 goroutine, got %d", goroutines)
	}
	ctx := context.Background()
	res := servingBench{GeneratedUnix: benchClock.Now().Unix(), QueriesPerOp: queries}
	for _, n := range []int{64, 1024, 4096} {
		if n > maxN {
			continue
		}
		p := syntheticProfile(n)
		var snap *coolopt.Snapshot
		buildD, err := bestOf(1, func() error {
			var err error
			snap, err = coolopt.NewSnapshot(p, 0, coolopt.WithMaxMachines(n))
			return err
		})
		if err != nil {
			return fmt.Errorf("snapshot n=%d: %w", n, err)
		}
		// Past the hierarchy threshold the production configuration
		// installs pod tables next to the exact snapshot, so the
		// consolidating optimum is served hierarchically — measure that.
		var pods *coolopt.PodSnapshot
		var podD time.Duration
		if n >= coolopt.HierThreshold {
			podD, err = bestOf(1, func() error {
				var err error
				pods, err = coolopt.NewPodSnapshot(p, 0)
				return err
			})
			if err != nil {
				return fmt.Errorf("pod tables n=%d: %w", n, err)
			}
		}
		eng, err := coolopt.NewEngineFromSnapshots(snap, pods)
		if err != nil {
			return fmt.Errorf("engine n=%d: %w", n, err)
		}

		// Cold solves and budget queries sweep the k loop, so their cost
		// grows superlinearly with n; shrink their query count at scale.
		solveQ := queries * 64 / n
		if solveQ < 16 {
			solveQ = 16
		}
		if solveQ > queries {
			solveQ = queries
		}
		// Feasible demand band: heavy enough to exercise the solve,
		// light enough that every scenario method stays feasible.
		loadIn := func(i, of int) float64 {
			frac := 0.1 + 0.7*float64(i)/float64(of)
			return frac * float64(n)
		}
		pt := servingPoint{N: n, Goroutines: goroutines, SolveQueries: solveQ, SnapshotBuildNS: buildD.Nanoseconds()}
		if pods != nil {
			pt.Pods = pods.Pods()
			pt.PodBuildNS = podD.Nanoseconds()
		}
		pt.PlanColdQPS, err = hammer(goroutines, solveQ, func(i int) error {
			_, err := eng.Plan(ctx, coolopt.PlanRequest{Load: loadIn(i, solveQ)})
			return err
		})
		if err != nil {
			return fmt.Errorf("plan cold n=%d: %w", n, err)
		}
		// Warm the hot set first so the hot figure measures pure cache /
		// single-flight throughput, not the 16 initial solves.
		for i := 0; i < 16; i++ {
			if _, err := eng.Plan(ctx, coolopt.PlanRequest{Load: loadIn(i, queries)}); err != nil {
				return fmt.Errorf("plan warm n=%d: %w", n, err)
			}
		}
		pt.PlanHotQPS, err = hammer(goroutines, queries, func(i int) error {
			_, err := eng.Plan(ctx, coolopt.PlanRequest{Load: loadIn(i%16, queries)})
			return err
		})
		if err != nil {
			return fmt.Errorf("plan hot n=%d: %w", n, err)
		}
		// Zipf mix: demand levels drawn from a popularity curve, so a few
		// loads dominate (cache hits) with a long tail of misses. The
		// sequence is pre-drawn — rand.Zipf is not goroutine-safe.
		zipfSrc := rand.NewZipf(rand.New(rand.NewSource(7)), 1.3, 1, 255)
		zipfLoads := make([]float64, queries)
		for i := range zipfLoads {
			zipfLoads[i] = loadIn(int(zipfSrc.Uint64()), 256)
		}
		pt.PlanZipfQPS, err = hammer(goroutines, queries, func(i int) error {
			_, err := eng.Plan(ctx, coolopt.PlanRequest{Load: zipfLoads[i]})
			return err
		})
		if err != nil {
			return fmt.Errorf("plan zipf n=%d: %w", n, err)
		}
		fullPowerW := float64(n)*(p.W1+p.W2) + p.CoolFactor*(p.SetPointC-p.TAcMinC)
		pt.MaxLoadQPS, err = hammer(goroutines, solveQ, func(i int) error {
			frac := 0.4 + 0.5*float64(i)/float64(solveQ)
			_, err := eng.MaxLoad(frac * fullPowerW)
			return err
		})
		if err != nil {
			return fmt.Errorf("maxload n=%d: %w", n, err)
		}
		pt.ConsolidateQPS, err = hammer(goroutines, queries, func(i int) error {
			_, err := eng.Consolidate(loadIn(i, queries), 1)
			return err
		})
		if err != nil {
			return fmt.Errorf("consolidate n=%d: %w", n, err)
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(out, "serving n=%d (%d goroutines): snapshot %v, plan %.0f/s cold %.0f/s hot %.0f/s zipf, maxload %.0f/s, consolidate %.0f/s",
			n, goroutines, time.Duration(pt.SnapshotBuildNS),
			pt.PlanColdQPS, pt.PlanHotQPS, pt.PlanZipfQPS, pt.MaxLoadQPS, pt.ConsolidateQPS)
		if pt.Pods > 0 {
			fmt.Fprintf(out, " (%d pods, built in %v)", pt.Pods, time.Duration(pt.PodBuildNS))
		}
		fmt.Fprintln(out)
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote serving trajectory to %s\n", path)
	return nil
}
