// Command paperbench regenerates every table and figure of the paper's
// evaluation section (§IV) from the simulated machine room: the profiling
// fits of Figs. 2–3, the scenario comparisons of Figs. 5–10, and the
// constraint verification the text reports.
//
// Usage:
//
//	paperbench [-seed N] [-machines N] [-fig 2|3|5|6|7|8|9|10|table1|verify|all] [-ablations]
//	paperbench -consolidation-bench BENCH_consolidation.json
//	paperbench -serving-bench BENCH_serving.json [-serving-goroutines 8]
//	paperbench -hierarchy-bench BENCH_hierarchy.json [-hierarchy-max-n 65536] [-hierarchy-depth 3]
//	paperbench -podsize-sweep internal/core/podsize_calibration.json
//	paperbench -chaos [-chaos-duration 900]
//
// -chaos runs the fault-injection scenario suite (internal/chaos): every
// scenario replays the same demand against a fault-free control run, the
// hardened controller under faults, and the pre-hardening controller under
// the same faults, and the report compares time above T_max, steady-state
// violations, recovery time, and energy cost.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"coolopt"
	"coolopt/internal/ablation"
	"coolopt/internal/dvfs"
	"coolopt/internal/figures"
	"coolopt/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	machines := fs.Int("machines", 20, "number of machines in the rack")
	figSel := fs.String("fig", "all", "which figure to regenerate (2,3,5,6,7,8,9,10,table1,verify,validation,all)")
	fig3Machine := fs.Int("fig3-machine", 10, "machine whose thermal fit Fig. 3 shows")
	ablations := fs.Bool("ablations", false, "also run the ablation studies (heterogeneity, scale, cooling share, margin)")
	csvDir := fs.String("csv", "", "also save each printed figure as CSV under this directory")
	reportPath := fs.String("report", "", "write a full markdown reproduction report to this file (implies the sweep)")
	consBench := fs.String("consolidation-bench", "", "measure consolidation preprocessing scaling and write the JSON trajectory to this file (e.g. BENCH_consolidation.json), then exit")
	consDenseMax := fs.Int("consolidation-dense-max", 256, "largest size at which the O(n³) dense reference also runs during -consolidation-bench")
	servBench := fs.String("serving-bench", "", "measure concurrent plan-serving throughput and write the JSON trajectory to this file (e.g. BENCH_serving.json), then exit")
	servGoroutines := fs.Int("serving-goroutines", 8, "concurrent clients hammering the engine during -serving-bench")
	servQueries := fs.Int("serving-queries", 512, "queries per operation kind during -serving-bench")
	servMaxN := fs.Int("serving-max-n", 4096, "largest room size measured during -serving-bench")
	hierBench := fs.String("hierarchy-bench", "", "measure pod-sharded hierarchical planning scaling and write the JSON trajectory to this file (e.g. BENCH_hierarchy.json), then exit")
	hierMaxN := fs.Int("hierarchy-max-n", 65536, "largest room size measured during -hierarchy-bench")
	hierQueries := fs.Int("hierarchy-queries", 256, "queries per operation kind during -hierarchy-bench")
	hierPodSize := fs.Int("hierarchy-pod-size", 0, "machines per pod during -hierarchy-bench (0 = library default)")
	hierGapLimit := fs.Float64("hierarchy-gap-limit", 0.05, "fail -hierarchy-bench if the worst-case gap vs the exact planner exceeds this fraction")
	hierDepth := fs.Int("hierarchy-depth", 0, "planner-tree depth during -hierarchy-bench: 2 = flat pods, 3 = pods of pods (0 = calibrated default)")
	hierBuildLimit := fs.Duration("hierarchy-build-limit", 0, "fail -hierarchy-bench if any point's table build exceeds this duration (0 = ungated)")
	hierColdPlanLimit := fs.Duration("hierarchy-cold-plan-limit", 0, "fail -hierarchy-bench if any point's mean cold-plan service time exceeds this duration (0 = ungated)")
	podsizeSweep := fs.String("podsize-sweep", "", "measure the (pod size, depth) grid and write the winning pod-sizing calibration curve to this file (e.g. internal/core/podsize_calibration.json), then exit")
	podsizeMaxN := fs.Int("podsize-sweep-max-n", 65536, "largest room size measured during -podsize-sweep")
	podsizeQueries := fs.Int("podsize-sweep-queries", 64, "cold plans timed per configuration during -podsize-sweep")
	podsizeBuildLimit := fs.Duration("podsize-sweep-build-limit", 60*time.Second, "disqualify -podsize-sweep configurations whose table build exceeds this duration")
	degBench := fs.String("degraded-bench", "", "measure pod-local vs flat degraded re-planning and write the JSON trajectory to this file (e.g. BENCH_degraded.json), then exit")
	degN := fs.Int("degraded-n", 4096, "room size during -degraded-bench / -degraded-chaos")
	degPods := fs.Int("degraded-pods", 16, "pod count during -degraded-bench / -degraded-chaos")
	degGapMeanLimit := fs.Float64("degraded-gap-mean-limit", 0.01, "fail -degraded-bench if any point's mean gap vs the flat degraded planner exceeds this fraction")
	degGapLimit := fs.Float64("degraded-gap-limit", 0.05, "fail -degraded-bench if any point's worst gap vs the flat degraded planner exceeds this fraction")
	degSpeedupFloor := fs.Float64("degraded-speedup-floor", 10, "fail -degraded-bench if pod-local degraded planning is not at least this many times faster than the flat sweep")
	degChaos := fs.Bool("degraded-chaos", false, "run the degraded-serving chaos scenario (avoid= hammer + overload + slow install over loopback HTTP), then exit")
	incBench := fs.String("incremental-bench", "", "measure incremental snapshot maintenance (PodSnapshot.Patch vs full rebuild, pipelined install latency) and write the JSON trajectory to this file (e.g. BENCH_incremental.json), then exit")
	incN := fs.Int("incremental-n", 4096, "room size during -incremental-bench / -incremental-chaos")
	incPods := fs.Int("incremental-pods", 0, "pod count during -incremental-bench / -incremental-chaos (0 = library default)")
	incSpeedupFloor := fs.Float64("incremental-speedup-floor", 20, "fail -incremental-bench if patching a 16-machine drift batch is not at least this many times faster than the full table rebuild")
	incCommitLimit := fs.Int64("incremental-commit-limit-ns", 1_000_000, "fail -incremental-bench if the pipelined install commit (epoch-checked pointer swap) exceeds this many nanoseconds")
	incChaos := fs.Bool("incremental-chaos", false, "run the incremental-install chaos scenario (patch trickle under concurrent planning load), then exit")
	chaosRun := fs.Bool("chaos", false, "run the fault-injection scenario suite (hardened vs unhardened controller), then exit")
	chaosDur := fs.Float64("chaos-duration", 900, "simulated seconds per chaos scenario")
	soakSeed := fs.Int64("soak-seed", 0, "with -chaos: also run a randomized fault schedule drawn from this seed (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *consBench != "" {
		return runConsolidationBench(out, *consBench, *consDenseMax)
	}
	if *servBench != "" {
		return runServingBench(out, *servBench, *servGoroutines, *servQueries, *servMaxN)
	}
	if *hierBench != "" {
		return runHierarchyBench(out, *hierBench, *servGoroutines, *hierQueries, *hierMaxN,
			*hierPodSize, *hierDepth, *hierGapLimit, *hierBuildLimit, *hierColdPlanLimit)
	}
	if *podsizeSweep != "" {
		return runPodSizeSweep(out, *podsizeSweep, *podsizeMaxN, *podsizeQueries, *hierGapLimit, *podsizeBuildLimit)
	}
	if *degBench != "" {
		return runDegradedBench(out, *degBench, *degN, *degPods, *degGapMeanLimit, *degGapLimit, *degSpeedupFloor)
	}
	if *degChaos {
		return runDegradedChaos(out, *degN, *degPods)
	}
	if *incBench != "" {
		return runIncrementalBench(out, *incBench, *incN, *incPods, *incSpeedupFloor, *incCommitLimit)
	}
	if *incChaos {
		return runIncrementalChaos(out, *incN, *incPods)
	}
	sel := strings.ToLower(*figSel)

	sys, err := coolopt.NewSystem(coolopt.WithSeed(*seed), coolopt.WithMachines(*machines))
	if err != nil {
		return err
	}
	if *chaosRun {
		return runChaos(out, sys, *seed, *chaosDur, *soakSeed)
	}

	want := func(id string) bool { return sel == "all" || sel == id }
	emit := func(fig *figures.Figure) error {
		fmt.Fprintln(out, fig.Render())
		if *csvDir == "" {
			return nil
		}
		path, err := fig.SaveCSV(*csvDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %s\n\n", path)
		return nil
	}

	if want("table1") {
		if err := emit(figures.Table1()); err != nil {
			return err
		}
	}
	if want("2") {
		if err := emit(figures.Fig2(sys, 40)); err != nil {
			return err
		}
	}
	if want("3") {
		f3, err := figures.Fig3(sys, *fig3Machine)
		if err != nil {
			return err
		}
		if err := emit(f3); err != nil {
			return err
		}
	}

	needsSweep := *reportPath != ""
	for _, id := range []string{"5", "6", "7", "8", "9", "10", "verify", "validation"} {
		if want(id) {
			needsSweep = true
		}
	}
	if !needsSweep && !*ablations {
		return nil
	}
	if !needsSweep {
		return runAblations(out, *seed, sys.Profile())
	}

	ds, err := figures.Collect(sys, nil)
	if err != nil {
		return err
	}
	sweepFigs := []struct {
		id  string
		fig func() *figures.Figure
	}{
		{id: "5", fig: ds.Fig5}, {id: "6", fig: ds.Fig6}, {id: "7", fig: ds.Fig7},
		{id: "8", fig: ds.Fig8}, {id: "9", fig: ds.Fig9}, {id: "10", fig: ds.Fig10},
		{id: "validation", fig: ds.ModelValidation},
	}
	for _, entry := range sweepFigs {
		if !want(entry.id) {
			continue
		}
		if err := emit(entry.fig()); err != nil {
			return err
		}
	}
	if want("verify") {
		report, err := ds.VerifyConstraints()
		fmt.Fprintln(out, report)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "all temperature and throughput constraints satisfied")
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		if err := report.Generate(f, ds, report.Options{Fig3Machine: *fig3Machine}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote report to %s\n", *reportPath)
	}
	if *ablations {
		return runAblations(out, *seed, sys.Profile())
	}
	return nil
}

// runAblations prints the four ablation studies and the §V DVFS design
// argument.
func runAblations(out io.Writer, seed int64, profile *coolopt.Profile) error {
	for _, study := range []func(int64) (*figures.Figure, error){
		ablation.Heterogeneity, ablation.Scale, ablation.CoolingShare,
		ablation.Margin, ablation.SensorNoise,
	} {
		fig, err := study(seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, fig.Render())
	}
	fig, err := dvfs.Compare(profile, dvfs.DefaultSplit(),
		[]float64{0.1, 0.3, 0.5, 0.7, 0.9})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, fig.Render())
	return nil
}
