package main

import (
	"coolopt/internal/clock"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"coolopt"
)

// This file implements -consolidation-bench: a self-contained scaling
// measurement of the consolidation preprocessing pipeline, written as a
// JSON trajectory file (BENCH_consolidation.json) so successive PRs can
// diff preprocessing time and table memory instead of re-deriving them
// from ad-hoc benchmark runs.

// consolidationPoint is one rack size of the trajectory.
type consolidationPoint struct {
	N int `json:"n"`
	// Kinetic (compressed) implementation.
	KineticNS         int64 `json:"kinetic_ns"`
	KineticTableBytes int   `json:"kinetic_table_bytes"`
	Pieces            int   `json:"pieces"`
	Events            int   `json:"events"`
	QueryExactNS      int64 `json:"query_exact_ns"`
	// Dense reference (seed implementation); zero when its O(n³) tables
	// were too large to build at this size.
	DenseNS         int64 `json:"dense_ns,omitempty"`
	DenseTableBytes int   `json:"dense_table_bytes,omitempty"`
	// Ratios dense/kinetic, present when both ran.
	Speedup     float64 `json:"speedup,omitempty"`
	MemoryRatio float64 `json:"memory_ratio,omitempty"`
}

// consolidationBench is the file schema.
type consolidationBench struct {
	GeneratedUnix int64                `json:"generated_unix"`
	DenseMaxN     int                  `json:"dense_max_n"`
	Points        []consolidationPoint `json:"points"`
}

// syntheticProfile mirrors the scaling-benchmark instance of
// bench_test.go: deterministic per-machine jitter, no simulation.
func syntheticProfile(n int) *coolopt.Profile {
	machines := make([]coolopt.MachineProfile, n)
	for i := range machines {
		h := float64(i) / float64(n-1)
		jitter := 0.05 * math.Sin(float64(i)*2.399963)
		machines[i] = coolopt.MachineProfile{
			Alpha: 1.0,
			Beta:  0.46 * (1 + 0.1*h + jitter),
			Gamma: 0.5 + 2.2*h - 10*jitter,
		}
	}
	return &coolopt.Profile{
		W1: 52, W2: 34, CoolFactor: 150, SetPointC: 31,
		TMaxC: 65, TAcMinC: 10, TAcMaxC: 25,
		Machines: machines,
	}
}

func syntheticReduced(n int) coolopt.Reduced {
	return syntheticProfile(n).Reduce()
}

// benchClock is the time source for benchmark measurements; tests swap in
// a clock.Fake to pin the trajectory file's timings and timestamp.
var benchClock = clock.Wall

// bestOf times fn over reps runs and returns the fastest.
func bestOf(reps int, fn func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		start := benchClock.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := clock.Since(benchClock, start); d < best {
			best = d
		}
	}
	return best, nil
}

// runConsolidationBench measures sizes {64, 256, 1024} (kinetic) with the
// dense reference alongside up to denseMaxN, and writes the trajectory to
// path.
func runConsolidationBench(out io.Writer, path string, denseMaxN int) error {
	sizes := []int{64, 256, 1024}
	res := consolidationBench{GeneratedUnix: benchClock.Now().Unix(), DenseMaxN: denseMaxN}
	for _, n := range sizes {
		red := syntheticReduced(n)
		reps := 3
		if n >= 1024 {
			reps = 1
		}

		var pre *coolopt.Preprocessed
		kinD, err := bestOf(reps, func() error {
			var err error
			pre, err = coolopt.Preprocess(red)
			return err
		})
		if err != nil {
			return fmt.Errorf("kinetic n=%d: %w", n, err)
		}
		queryReps := 50
		qD, err := bestOf(3, func() error {
			for i := 0; i < queryReps; i++ {
				if _, err := pre.QueryExact(float64(n)/2, n/2); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("query n=%d: %w", n, err)
		}
		pt := consolidationPoint{
			N:                 n,
			KineticNS:         kinD.Nanoseconds(),
			KineticTableBytes: pre.TableBytes(),
			Pieces:            pre.Pieces(),
			Events:            pre.Events(),
			QueryExactNS:      qD.Nanoseconds() / int64(queryReps),
		}

		if n <= denseMaxN {
			var den *coolopt.DensePreprocessed
			denD, err := bestOf(reps, func() error {
				var err error
				den, err = coolopt.PreprocessDense(red, coolopt.WithMaxMachines(n))
				return err
			})
			if err != nil {
				return fmt.Errorf("dense n=%d: %w", n, err)
			}
			pt.DenseNS = denD.Nanoseconds()
			pt.DenseTableBytes = den.TableBytes()
			pt.Speedup = float64(pt.DenseNS) / float64(pt.KineticNS)
			pt.MemoryRatio = float64(pt.DenseTableBytes) / float64(pt.KineticTableBytes)
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(out, "consolidation n=%d: kinetic %v (%d B tables, %d pieces)", n, kinD, pt.KineticTableBytes, pt.Pieces)
		if pt.DenseNS > 0 {
			fmt.Fprintf(out, ", dense %v (%d B tables) — %.1f× faster, %.1f× smaller",
				time.Duration(pt.DenseNS), pt.DenseTableBytes, pt.Speedup, pt.MemoryRatio)
		}
		fmt.Fprintln(out)
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote consolidation trajectory to %s\n", path)
	return nil
}
