package main

import (
	"fmt"
	"io"

	"coolopt"
	"coolopt/internal/chaos"
)

// runChaos runs the fault-injection scenario suite on the profiled room
// and prints the three-arm comparison report. A non-zero soakSeed appends
// a randomized fault schedule drawn from that seed to the suite.
func runChaos(out io.Writer, sys *coolopt.System, seed int64, durationS float64, soakSeed int64) error {
	fmt.Fprintf(out, "chaos suite — %d machines, %.0f s per scenario, seed %d\n",
		sys.Size(), durationS, seed)
	suite := chaos.Suite()
	if soakSeed != 0 {
		soak, err := chaos.RandomScenario(soakSeed, sys.Size(), durationS)
		if err != nil {
			return err
		}
		suite = append(suite, soak)
	}
	for _, sc := range suite {
		fmt.Fprintf(out, "  %-14s %s\n", sc.Name, sc.Detail)
	}
	fmt.Fprintln(out)
	outs, err := chaos.RunSuite(sys, chaos.Options{Seed: seed, DurationS: durationS, SoakSeed: soakSeed})
	if err != nil {
		return err
	}
	fmt.Fprint(out, chaos.Render(outs))
	return nil
}
