package main

import (
	"fmt"
	"io"

	"coolopt"
	"coolopt/internal/chaos"
)

// runChaos runs the fault-injection scenario suite on the profiled room
// and prints the three-arm comparison report.
func runChaos(out io.Writer, sys *coolopt.System, seed int64, durationS float64) error {
	fmt.Fprintf(out, "chaos suite — %d machines, %.0f s per scenario, seed %d\n",
		sys.Size(), durationS, seed)
	for _, sc := range chaos.Suite() {
		fmt.Fprintf(out, "  %-14s %s\n", sc.Name, sc.Detail)
	}
	fmt.Fprintln(out)
	outs, err := chaos.RunSuite(sys, chaos.Options{Seed: seed, DurationS: durationS})
	if err != nil {
		return err
	}
	fmt.Fprint(out, chaos.Render(outs))
	return nil
}
