package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"coolopt"
	"coolopt/internal/chaos"
	"coolopt/internal/faults"
)

// This file implements -incremental-bench and -incremental-chaos: the
// measurements for incremental snapshot maintenance. The bench compares
// applying a k-machine drift batch through PodSnapshot.Patch (only the
// touched pods' kinetic tables rebuild, untouched pods share their
// arenas) against rebuilding the planning state from scratch, writing a
// JSON trajectory (BENCH_incremental.json). The run doubles as a
// regression gate: it fails if any k-machine point at the gate size stops
// beating the full rebuild by -incremental-speedup-floor, or if the
// pipelined install's commit (the epoch-checked pointer swap) exceeds
// -incremental-commit-limit-ns.

// incrementalPoint is one (drift size, burst shape) cell.
type incrementalPoint struct {
	N       int    `json:"n"`
	Pods    int    `json:"pods"`
	Drifted int    `json:"drifted"`
	Shape   string `json:"shape"`
	// PodPatchNS is the PodSnapshot.Patch latency for this batch.
	PodPatchNS int64 `json:"pod_patch_ns"`
	// PodRebuildSpeedup is the from-scratch pod-table rebuild over the
	// patch; FullRebuildSpeedup is the from-scratch exact-table rebuild
	// over the patch — what landing this drift batch cost before
	// incremental maintenance existed.
	PodRebuildSpeedup  float64 `json:"pod_rebuild_speedup"`
	FullRebuildSpeedup float64 `json:"full_rebuild_speedup"`
}

// incrementalBench is the file schema.
type incrementalBench struct {
	GeneratedUnix int64   `json:"generated_unix"`
	SpeedupFloor  float64 `json:"speedup_floor"`
	GateDrifted   int     `json:"gate_drifted"`
	CommitLimitNS int64   `json:"commit_limit_ns"`
	// RebuildFlatNS and RebuildPodNS are the from-scratch build times of
	// the exact tables (with crossing retention) and the pod tables.
	// RetainedBytes is the extra memory the exact tables carry to stay
	// patchable.
	RebuildFlatNS int64 `json:"rebuild_flat_ns"`
	RebuildPodNS  int64 `json:"rebuild_pod_ns"`
	RetainedBytes int64 `json:"retained_bytes"`
	// FlatPatchNS is Snapshot.Patch on the exact tables at the gate size
	// (kept crossings are filtered, only drifted pairs regenerate; the
	// segment arena still rebuilds, so the win is bounded).
	FlatPatchNS int64 `json:"flat_patch_ns"`
	// PrepareNS and CommitNS split one pipelined engine install: the
	// off-hot-path build versus the epoch-checked pointer swap.
	PrepareNS int64              `json:"prepare_ns"`
	CommitNS  int64              `json:"commit_ns"`
	Points    []incrementalPoint `json:"points"`
}

// driftBurst turns a burst's machine IDs into a valid drift batch against
// the profile: a deterministic small β/γ perturbation.
func driftBurst(p *coolopt.Profile, ids []int) []coolopt.MachineDelta {
	batch := make([]coolopt.MachineDelta, len(ids))
	for i, id := range ids {
		m := p.Machines[id]
		m.Beta *= 1.01
		m.Gamma += 0.1
		batch[i] = coolopt.MachineDelta{ID: id, Machine: m}
	}
	return batch
}

// runIncrementalBench measures one room size across drift-batch sizes
// {1, gateK, 16·gateK} (clipped to n/4) in both burst shapes and writes
// the trajectory to path.
func runIncrementalBench(out io.Writer, path string, n, podCount int, speedupFloor float64, commitLimitNS int64) error {
	const gateK = 16
	p := syntheticProfile(n)
	res := incrementalBench{
		GeneratedUnix: benchClock.Now().Unix(),
		SpeedupFloor:  speedupFloor, GateDrifted: gateK, CommitLimitNS: commitLimitNS,
	}

	// Full-rebuild baselines: the exact tables (what a drift batch cost
	// before incremental maintenance — measured once, it is the slow
	// path being retired) and the pod tables.
	var snap *coolopt.Snapshot
	flatD, err := bestOf(1, func() error {
		var err error
		snap, err = coolopt.NewSnapshot(p, 0, coolopt.WithPatchSupport(), coolopt.WithMaxMachines(n))
		return err
	})
	if err != nil {
		return fmt.Errorf("exact tables n=%d: %w", n, err)
	}
	res.RebuildFlatNS = flatD.Nanoseconds()
	res.RetainedBytes = int64(snap.Tables().RetainedCrossingBytes())

	var podOpts []coolopt.PodOption
	if podCount > 0 {
		podOpts = append(podOpts, coolopt.WithPodCount(podCount))
	}
	var pods *coolopt.PodSnapshot
	podD, err := bestOf(3, func() error {
		var err error
		pods, err = coolopt.NewPodSnapshot(p, 0, podOpts...)
		return err
	})
	if err != nil {
		return fmt.Errorf("pod tables n=%d: %w", n, err)
	}
	res.RebuildPodNS = podD.Nanoseconds()

	var ks []int
	for _, k := range []int{1, gateK, 16 * gateK} {
		if k <= n/4 {
			ks = append(ks, k)
		}
	}
	shapes := []struct {
		name  string
		burst func(n, f int) []int
	}{
		{"concentrated", faults.ConcentratedBurst},
		{"spread", faults.SpreadBurst},
	}
	for _, k := range ks {
		for _, shape := range shapes {
			batch := driftBurst(p, shape.burst(n, k))
			var patched *coolopt.PodSnapshot
			d, err := bestOf(3, func() error {
				var err error
				patched, err = pods.Patch(batch)
				return err
			})
			if err != nil {
				return fmt.Errorf("pod patch n=%d k=%d %s: %w", n, k, shape.name, err)
			}
			if patched.Epoch() != pods.Epoch()+1 {
				return fmt.Errorf("pod patch n=%d k=%d %s: epoch %d, want %d", n, k, shape.name, patched.Epoch(), pods.Epoch()+1)
			}
			pt := incrementalPoint{
				N: n, Pods: pods.Pods(), Drifted: k, Shape: shape.name,
				PodPatchNS: d.Nanoseconds(),
			}
			if pt.PodPatchNS > 0 {
				pt.PodRebuildSpeedup = float64(res.RebuildPodNS) / float64(pt.PodPatchNS)
				pt.FullRebuildSpeedup = float64(res.RebuildFlatNS) / float64(pt.PodPatchNS)
			}
			if k == gateK && pt.FullRebuildSpeedup < speedupFloor {
				return fmt.Errorf("incremental speedup regression at k=%d %s: patch %v is only %.1f× the %v full rebuild, floor %.1f×",
					k, shape.name, time.Duration(pt.PodPatchNS), pt.FullRebuildSpeedup,
					time.Duration(res.RebuildFlatNS), speedupFloor)
			}
			res.Points = append(res.Points, pt)
			fmt.Fprintf(out, "incremental n=%d (%d pods) k=%-3d %-12s: patch %v vs rebuild %v pod / %v full (%.0f× / %.0f×)\n",
				n, pt.Pods, k, shape.name, time.Duration(pt.PodPatchNS),
				time.Duration(res.RebuildPodNS), time.Duration(res.RebuildFlatNS),
				pt.PodRebuildSpeedup, pt.FullRebuildSpeedup)
		}
	}

	// The exact tables' own patch path at the gate size: retained
	// crossings make it cheaper than a full rebuild, but the segment
	// arena still rebuilds, so it stays the off-hot-path option.
	gateBatch := driftBurst(p, faults.ConcentratedBurst(n, gateK))
	d, err := bestOf(1, func() error {
		_, err := snap.Patch(gateBatch, coolopt.WithPatchSupport())
		return err
	})
	if err != nil {
		return fmt.Errorf("flat patch n=%d: %w", n, err)
	}
	res.FlatPatchNS = d.Nanoseconds()
	fmt.Fprintf(out, "incremental n=%d exact-table patch k=%d: %v (%.1f× the full rebuild)\n",
		n, gateK, d, float64(res.RebuildFlatNS)/float64(res.FlatPatchNS))

	// One pipelined install through the serving engine (pod tables, the
	// configuration that serves at this scale): the prepare runs off the
	// hot path, the commit must stay a sub-millisecond pointer swap.
	eng, err := coolopt.NewEngineFromSnapshots(nil, pods)
	if err != nil {
		return err
	}
	prepStart := benchClock.Now()
	prep, err := eng.PreparePatch(gateBatch)
	if err != nil {
		return fmt.Errorf("prepare install: %w", err)
	}
	prepEnd := benchClock.Now()
	if err := eng.CommitInstall(prep); err != nil {
		return fmt.Errorf("commit install: %w", err)
	}
	commitEnd := benchClock.Now()
	res.PrepareNS = prepEnd.Sub(prepStart).Nanoseconds()
	res.CommitNS = commitEnd.Sub(prepEnd).Nanoseconds()
	if res.CommitNS > commitLimitNS {
		return fmt.Errorf("install commit latency regression: %v exceeds the %v limit",
			time.Duration(res.CommitNS), time.Duration(commitLimitNS))
	}
	fmt.Fprintf(out, "incremental n=%d pipelined install: prepare %v, commit %v (limit %v)\n",
		n, time.Duration(res.PrepareNS), time.Duration(res.CommitNS), time.Duration(commitLimitNS))

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote incremental-maintenance trajectory to %s\n", path)
	return nil
}

// runIncrementalChaos runs the incremental-install chaos scenario: a
// re-profiler trickling patch generations through the pipelined install
// path while planner goroutines hammer every serving flavor. Any
// pipeline-contract violation fails the run.
func runIncrementalChaos(out io.Writer, n, podCount int) error {
	rep, err := chaos.RunIncrementalServing(chaos.IncrementalOptions{N: n, Pods: podCount})
	if err != nil {
		return fmt.Errorf("incremental serving chaos: %w", err)
	}
	fmt.Fprintf(out, "incremental serving chaos n=%d (%d pods): %s\n", n, podCount, rep)
	fmt.Fprintln(out, "verdict: epochs monotone at every worker, sampled answers bit-identical to their recorded generation, readiness never flapped")
	return nil
}
