package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable1Only(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-fig", "table1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") {
		t.Fatalf("missing Table I:\n%s", out)
	}
	if strings.Contains(out, "Fig. 6") {
		t.Fatal("unrequested figure printed")
	}
}

func TestRunFig2And3(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-fig", "2"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Fatal("missing Fig. 2")
	}
	buf.Reset()
	if err := run([]string{"-machines", "8", "-fig", "3", "-fig3-machine", "2"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "Fig. 3") {
		t.Fatal("missing Fig. 3")
	}
}

func TestRunFig3MachineOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-fig", "3", "-fig3-machine", "99"}, &buf); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
}

func TestRunSweepFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-fig", "9"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatal("missing Fig. 9")
	}
}

func TestRunConsolidationBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_consolidation.json")
	var buf bytes.Buffer
	// Cap the dense reference at 64 machines to keep the test fast; the
	// kinetic sizes always run in full.
	if err := run([]string{"-consolidation-bench", path, "-consolidation-dense-max", "64"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trajectory not written: %v", err)
	}
	var res consolidationBench
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.KineticNS <= 0 || pt.KineticTableBytes <= 0 || pt.Pieces <= 0 {
			t.Fatalf("incomplete point %+v", pt)
		}
	}
	first := res.Points[0]
	if first.N != 64 || first.DenseNS <= 0 || first.MemoryRatio <= 1 {
		t.Fatalf("dense reference missing or not larger than kinetic at n=64: %+v", first)
	}
	if !strings.Contains(buf.String(), "wrote consolidation trajectory") {
		t.Fatal("confirmation missing")
	}
}

func TestRunServingBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	var buf bytes.Buffer
	// Cap the room size at 64 machines and shrink the query count to
	// keep the test fast; the full trajectory runs up to 4096.
	if err := run([]string{"-serving-bench", path, "-serving-max-n", "64", "-serving-queries", "48"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trajectory not written: %v", err)
	}
	var res servingBench
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	pt := res.Points[0]
	if pt.N != 64 || pt.Goroutines != 8 || pt.SnapshotBuildNS <= 0 {
		t.Fatalf("incomplete point %+v", pt)
	}
	if pt.PlanColdQPS <= 0 || pt.PlanHotQPS <= 0 || pt.PlanZipfQPS <= 0 || pt.MaxLoadQPS <= 0 || pt.ConsolidateQPS <= 0 {
		t.Fatalf("non-positive throughput %+v", pt)
	}
	if pt.Pods != 0 {
		t.Fatalf("pods installed below the hierarchy threshold: %+v", pt)
	}
	if !strings.Contains(buf.String(), "wrote serving trajectory") {
		t.Fatal("confirmation missing")
	}
}

func TestRunHierarchyBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_hierarchy.json")
	var buf bytes.Buffer
	// Cap the room size at 256 machines (4 pods of 64) and shrink the
	// query count to keep the test fast; the full trajectory runs up to
	// 65536.
	if err := run([]string{"-hierarchy-bench", path, "-hierarchy-max-n", "256", "-hierarchy-pod-size", "64", "-hierarchy-queries", "32"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trajectory not written: %v", err)
	}
	var res hierarchyBench
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(res.Points))
	}
	pt := res.Points[0]
	if pt.N != 256 || pt.Pods != 4 || pt.BuildNS <= 0 || pt.TableBytes <= 0 {
		t.Fatalf("incomplete point %+v", pt)
	}
	if pt.PlanColdQPS <= 0 || pt.PlanHotQPS <= 0 {
		t.Fatalf("non-positive throughput %+v", pt)
	}
	// 256 machines is within the exact cap, so the gap sweep must have
	// run and stayed under the default 5 % limit (the run errors past it).
	if pt.ExactBuildNS <= 0 {
		t.Fatalf("gap sweep skipped at n=256: %+v", pt)
	}
	if pt.GapWorst < 0 || pt.GapWorst > 0.05 {
		t.Fatalf("gap out of range: %+v", pt)
	}
	if !strings.Contains(buf.String(), "wrote hierarchy trajectory") {
		t.Fatal("confirmation missing")
	}
	// An unreachable gap limit must fail the run (the gap is never
	// negative, so a negative limit always trips).
	if err := run([]string{"-hierarchy-bench", path, "-hierarchy-max-n", "256", "-hierarchy-pod-size", "64", "-hierarchy-queries", "32", "-hierarchy-gap-limit", "-1"}, &buf); err == nil {
		t.Fatal("negative gap limit accepted")
	}
}

func TestRunFlagError(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-fig", "9", "-csv", dir}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig_9.csv")); err != nil {
		t.Fatalf("csv not saved: %v", err)
	}
	if !strings.Contains(buf.String(), "saved") {
		t.Fatal("save confirmation missing")
	}
}

func TestRunReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-fig", "verify", "-report", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if !strings.Contains(string(data), "## Headline") {
		t.Fatal("report missing headline section")
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations build several full systems")
	}
	var buf bytes.Buffer
	if err := run([]string{"-fig", "table1", "-ablations"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C", "Ablation D", "Ablation F", "Extension E"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}
