package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"coolopt"
	"coolopt/internal/clock"
	"coolopt/internal/core"
)

// This file implements -podsize-sweep: the measurement behind adaptive
// pod sizing. NewPodSnapshot's defaults (machines per pod and planner
// tree depth) come from an embedded calibration curve
// (internal/core/podsize_calibration.json); this sweep regenerates that
// curve by measuring, for each room size, every candidate (pod size,
// depth) configuration — table build time, table bytes, mean cold-plan
// service time, and (at sizes where the exact planner still runs) the
// optimality gap — and persisting the winner. The committed file is the
// output of this sweep on the reference hardware; rerun it with
// `make podsize-sweep` when the hardware or the kinetic builder changes.

// podsizeCandidate is one measured configuration for one room size.
type podsizeCandidate struct {
	PodSize     int     `json:"pod_size"`
	Depth       int     `json:"depth"`
	BuildMS     float64 `json:"build_ms"`
	TableMB     float64 `json:"table_mb"`
	ColdPlanNS  int64   `json:"cold_plan_ns"`
	GapWorstPct float64 `json:"gap_worst_pct,omitempty"`
}

// runPodSizeSweep measures the (pod size, depth) grid at room sizes
// {4096, 16384, 65536, 262144} up to maxN and writes the winning curve
// to path in the internal/core calibration schema. The winner per room
// size is the candidate with the fastest cold plan among those whose
// build fits buildLimit and whose measured gap (when an exact reference
// exists) stays within gapLimit.
func runPodSizeSweep(out io.Writer, path string, maxN, queries int, gapLimit float64, buildLimit time.Duration) error {
	sizes := []int{4096, 16384, 65536, 262144}
	podSizes := []int{128, 256, 512}
	depths := []int{2, 3}

	cur := core.DefaultCalibration()
	res := core.Calibration{HierThreshold: cur.HierThreshold}
	for _, n := range sizes {
		if n > maxN {
			continue
		}
		p := syntheticProfile(n)

		// One exact reference per room size, reused across candidates.
		var exact *coolopt.Snapshot
		if n <= hierExactMaxN {
			var err error
			exact, err = coolopt.NewSnapshot(p, 0, coolopt.WithMaxMachines(n))
			if err != nil {
				return fmt.Errorf("exact snapshot n=%d: %w", n, err)
			}
		}

		var best *podsizeCandidate
		for _, ps := range podSizes {
			if ps >= n {
				continue
			}
			for _, depth := range depths {
				// A depth-3 tree over a handful of pods degenerates to
				// depth 2; skip the duplicate measurement.
				if depth > 2 && n/ps < 64 {
					continue
				}
				cand, err := measurePodSize(p, n, ps, depth, queries, exact)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "podsize n=%d pod_size=%d depth=%d: build %.0f ms, %.1f MB tables, cold plan %v",
					n, ps, depth, cand.BuildMS, cand.TableMB, time.Duration(cand.ColdPlanNS))
				if exact != nil {
					fmt.Fprintf(out, ", gap %.3f%% worst", cand.GapWorstPct)
				}
				switch {
				case buildLimit > 0 && cand.BuildMS > float64(buildLimit.Milliseconds()):
					fmt.Fprintln(out, "  [over build limit]")
					continue
				case exact != nil && cand.GapWorstPct > 100*gapLimit:
					fmt.Fprintln(out, "  [over gap limit]")
					continue
				}
				fmt.Fprintln(out)
				if best == nil || cand.ColdPlanNS < best.ColdPlanNS ||
					(cand.ColdPlanNS == best.ColdPlanNS && cand.BuildMS < best.BuildMS) {
					best = &cand
				}
			}
		}
		if best == nil {
			return fmt.Errorf("podsize sweep n=%d: no candidate fits build limit %v and gap limit %.1f%%",
				n, buildLimit, 100*gapLimit)
		}
		fmt.Fprintf(out, "podsize n=%d winner: pod_size=%d depth=%d\n", n, best.PodSize, best.Depth)
		res.Points = append(res.Points, core.CalibrationPoint{
			N: n, PodSize: best.PodSize, Depth: best.Depth,
			BuildMS: best.BuildMS, TableMB: best.TableMB, GapWorstPct: best.GapWorstPct,
		})
	}
	if len(res.Points) == 0 {
		return fmt.Errorf("podsize sweep measured nothing below -podsize-sweep-max-n %d", maxN)
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	// Round-trip through the parser so a sweep can never commit a curve
	// the embedding package would panic on.
	if _, err := core.ParseCalibration(data); err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote pod-sizing calibration to %s\n", path)
	return nil
}

// measurePodSize builds one candidate configuration and measures it.
func measurePodSize(p *coolopt.Profile, n, podSize, depth, queries int, exact *coolopt.Snapshot) (podsizeCandidate, error) {
	var pods *coolopt.PodSnapshot
	buildD, err := bestOf(1, func() error {
		var err error
		pods, err = coolopt.NewPodSnapshot(p, 0,
			coolopt.WithPodSize(podSize), coolopt.WithPodDepth(depth))
		return err
	})
	if err != nil {
		return podsizeCandidate{}, fmt.Errorf("pod tables n=%d pod_size=%d depth=%d: %w", n, podSize, depth, err)
	}
	cand := podsizeCandidate{
		PodSize: podSize,
		Depth:   pods.Depth(),
		BuildMS: float64(buildD.Nanoseconds()) / 1e6,
		TableMB: float64(pods.TableBytes()) / (1 << 20),
	}

	if queries < 1 {
		queries = 1
	}
	start := benchClock.Now()
	for i := 0; i < queries; i++ {
		load := (0.1 + 0.7*float64(i)/float64(queries)) * float64(n)
		if _, err := pods.Plan(load); err != nil {
			return podsizeCandidate{}, fmt.Errorf("plan n=%d pod_size=%d depth=%d load %v: %w", n, podSize, depth, load, err)
		}
	}
	cand.ColdPlanNS = clock.Since(benchClock, start).Nanoseconds() / int64(queries)

	if exact != nil {
		for _, frac := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9} {
			load := frac * float64(n)
			want, err := exact.Plan(load)
			if err != nil {
				return podsizeCandidate{}, fmt.Errorf("exact plan n=%d load %v: %w", n, load, err)
			}
			got, err := pods.Plan(load)
			if err != nil {
				return podsizeCandidate{}, fmt.Errorf("hierarchical plan n=%d load %v: %w", n, load, err)
			}
			gap := 100 * float64(p.PlanPower(got)-p.PlanPower(want)) / float64(p.PlanPower(want))
			if gap > cand.GapWorstPct {
				cand.GapWorstPct = gap
			}
		}
	}
	return cand, nil
}
