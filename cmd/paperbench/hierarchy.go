package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"coolopt"
)

// This file implements -hierarchy-bench: a scaling measurement of the
// pod-sharded hierarchical planner (core.PodSnapshot), written as a JSON
// trajectory file (BENCH_hierarchy.json). It covers room sizes the
// whole-room kinetic tables cannot reach (the exact preprocessing is
// O(n² lg n) time and O(n²) memory), and at sizes where the exact
// planner still runs it measures the hierarchy's optimality gap — the
// run fails if the worst-case gap exceeds -hierarchy-gap-limit, so the
// bench doubles as a regression gate.

// hierarchyPoint is one room size of the trajectory.
type hierarchyPoint struct {
	N     int `json:"n"`
	Pods  int `json:"pods"`
	Depth int `json:"depth"`
	// BuildNS is the parallel pod-table build; Events and TableBytes sum
	// the per-pod kinetic structures.
	BuildNS    int64 `json:"build_ns"`
	Events     int   `json:"events"`
	TableBytes int   `json:"table_bytes"`
	// PlanColdNS is the mean service time per cold #8 plan (the inverse
	// of pool throughput — distinct loads, every query a cache miss);
	// PlanColdQPS and PlanHotQPS are engine throughput with distinct and
	// cycling loads respectively.
	PlanColdNS  int64   `json:"plan_cold_ns"`
	PlanColdQPS float64 `json:"plan_cold_qps"`
	PlanHotQPS  float64 `json:"plan_hot_qps"`
	// Gap statistics against the exact whole-room planner, present only
	// at sizes where the exact tables were built (n ≤ the exact cap).
	ExactBuildNS int64   `json:"exact_build_ns,omitempty"`
	GapMean      float64 `json:"gap_mean,omitempty"`
	GapWorst     float64 `json:"gap_worst,omitempty"`
}

// hierarchyBench is the file schema.
type hierarchyBench struct {
	GeneratedUnix int64   `json:"generated_unix"`
	GapLimit      float64 `json:"gap_limit"`
	// BuildLimitNS and ColdPlanLimitNS record the gates the run was held
	// to (0 = ungated): every point's table build and mean cold-plan
	// service time must come in under them or the run fails.
	BuildLimitNS    int64            `json:"build_limit_ns,omitempty"`
	ColdPlanLimitNS int64            `json:"cold_plan_limit_ns,omitempty"`
	Points          []hierarchyPoint `json:"points"`
}

// hierExactMaxN caps the exact reference build during -hierarchy-bench:
// past 4096 machines the whole-room tables are exactly what the
// hierarchy exists to avoid.
const hierExactMaxN = 4096

// runHierarchyBench measures sizes {256, 1024, 4096, 16384, 65536,
// 262144, 1048576} up to maxN and writes the trajectory to path. Sizes with an
// exact reference also sweep the optimality gap; a worst-case gap above
// gapLimit fails the run. depth > 0 pins the planner-tree depth (depth 3
// is the pods-of-pods configuration that reaches n=262144 and beyond);
// buildLimit and coldPlanLimit, when positive, gate every point's table
// build time and mean cold-plan service time.
func runHierarchyBench(out io.Writer, path string, goroutines, queries, maxN, podSize, depth int, gapLimit float64, buildLimit, coldPlanLimit time.Duration) error {
	if goroutines < 1 {
		return fmt.Errorf("hierarchy bench needs at least 1 goroutine, got %d", goroutines)
	}
	var podOpts []coolopt.PodOption
	if podSize > 0 {
		podOpts = append(podOpts, coolopt.WithPodSize(podSize))
	}
	if depth > 0 {
		podOpts = append(podOpts, coolopt.WithPodDepth(depth))
	}
	ctx := context.Background()
	res := hierarchyBench{
		GeneratedUnix:   benchClock.Now().Unix(),
		GapLimit:        gapLimit,
		BuildLimitNS:    buildLimit.Nanoseconds(),
		ColdPlanLimitNS: coldPlanLimit.Nanoseconds(),
	}
	for _, n := range []int{256, 1024, 4096, 16384, 65536, 262144, 1048576} {
		if n > maxN {
			continue
		}
		p := syntheticProfile(n)
		var pods *coolopt.PodSnapshot
		buildD, err := bestOf(1, func() error {
			var err error
			pods, err = coolopt.NewPodSnapshot(p, 0, podOpts...)
			return err
		})
		if err != nil {
			return fmt.Errorf("pod tables n=%d: %w", n, err)
		}
		eng, err := coolopt.NewEngineFromSnapshots(nil, pods)
		if err != nil {
			return fmt.Errorf("engine n=%d: %w", n, err)
		}
		pt := hierarchyPoint{
			N: n, Pods: pods.Pods(), Depth: pods.Depth(), BuildNS: buildD.Nanoseconds(),
			Events: pods.Events(), TableBytes: pods.TableBytes(),
		}
		if buildLimit > 0 && buildD > buildLimit {
			return fmt.Errorf("hierarchy build regression at n=%d depth %d: %v exceeds limit %v",
				n, pt.Depth, buildD, buildLimit)
		}

		loadIn := func(i, of int) float64 {
			frac := 0.1 + 0.7*float64(i)/float64(of)
			return frac * float64(n)
		}
		pt.PlanColdQPS, err = hammer(goroutines, queries, func(i int) error {
			_, err := eng.Plan(ctx, coolopt.PlanRequest{Load: loadIn(i, queries)})
			return err
		})
		if err != nil {
			return fmt.Errorf("plan cold n=%d: %w", n, err)
		}
		pt.PlanColdNS = int64(1e9 / pt.PlanColdQPS)
		if coldPlanLimit > 0 && pt.PlanColdNS > coldPlanLimit.Nanoseconds() {
			return fmt.Errorf("hierarchy cold-plan regression at n=%d depth %d: %v exceeds limit %v",
				n, pt.Depth, time.Duration(pt.PlanColdNS), coldPlanLimit)
		}
		pt.PlanHotQPS, err = hammer(goroutines, queries, func(i int) error {
			_, err := eng.Plan(ctx, coolopt.PlanRequest{Load: loadIn(i%16, queries)})
			return err
		})
		if err != nil {
			return fmt.Errorf("plan hot n=%d: %w", n, err)
		}

		if n <= hierExactMaxN {
			var exact *coolopt.Snapshot
			exactD, err := bestOf(1, func() error {
				var err error
				exact, err = coolopt.NewSnapshot(p, 0, coolopt.WithMaxMachines(n))
				return err
			})
			if err != nil {
				return fmt.Errorf("exact snapshot n=%d: %w", n, err)
			}
			pt.ExactBuildNS = exactD.Nanoseconds()
			var sum float64
			fracs := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9}
			for _, frac := range fracs {
				load := frac * float64(n)
				want, err := exact.Plan(load)
				if err != nil {
					return fmt.Errorf("exact plan n=%d load %v: %w", n, load, err)
				}
				got, err := pods.Plan(load)
				if err != nil {
					return fmt.Errorf("hierarchical plan n=%d load %v: %w", n, load, err)
				}
				gap := float64(p.PlanPower(got)-p.PlanPower(want)) / float64(p.PlanPower(want))
				if gap > pt.GapWorst {
					pt.GapWorst = gap
				}
				sum += gap
			}
			pt.GapMean = sum / float64(len(fracs))
			if pt.GapWorst > gapLimit {
				return fmt.Errorf("hierarchy gap regression at n=%d: worst %.3f%% exceeds limit %.3f%%",
					n, 100*pt.GapWorst, 100*gapLimit)
			}
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(out, "hierarchy n=%d (%d pods, depth %d): build %v (%d B tables), plan %.0f/s cold (%v) %.0f/s hot",
			n, pt.Pods, pt.Depth, time.Duration(pt.BuildNS), pt.TableBytes,
			pt.PlanColdQPS, time.Duration(pt.PlanColdNS), pt.PlanHotQPS)
		if pt.ExactBuildNS > 0 {
			fmt.Fprintf(out, ", gap %.3f%% mean %.3f%% worst (exact build %v)",
				100*pt.GapMean, 100*pt.GapWorst, time.Duration(pt.ExactBuildNS))
		}
		fmt.Fprintln(out)
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote hierarchy trajectory to %s\n", path)
	return nil
}
