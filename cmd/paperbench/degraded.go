package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"coolopt"
	"coolopt/internal/chaos"
	"coolopt/internal/faults"
)

// This file implements -degraded-bench and -degraded-chaos: the
// robustness measurements for degraded-mode planning. The bench compares
// pod-local degraded re-planning (PodSnapshot.PlanAvoiding — untouched
// pods reuse their tables, only failure-touched pods recompute) against
// the flat degraded re-plan (the O(n) closed-form prefix sweep over the
// whole survivor pool) across failure-burst sizes and shapes, writing a
// JSON trajectory (BENCH_degraded.json). The run doubles as a regression
// gate: it fails if any point's optimality gap exceeds the limits or the
// pod-local path stops being -degraded-speedup-floor times faster.

// degradedPoint is one (failure count, burst shape) cell.
type degradedPoint struct {
	N        int    `json:"n"`
	Pods     int    `json:"pods"`
	Failures int    `json:"failures"`
	Shape    string `json:"shape"`
	// PodNS and FlatNS are mean per-plan latencies over the load sweep;
	// Speedup is their ratio.
	PodNS   int64   `json:"pod_ns"`
	FlatNS  int64   `json:"flat_ns"`
	Speedup float64 `json:"speedup"`
	// GapMean and GapWorst are positive-part power gaps of the pod-local
	// plan against the flat degraded reference over the load sweep.
	GapMean  float64 `json:"gap_mean"`
	GapWorst float64 `json:"gap_worst"`
}

// degradedBench is the file schema.
type degradedBench struct {
	GeneratedUnix int64           `json:"generated_unix"`
	GapMeanLimit  float64         `json:"gap_mean_limit"`
	GapLimit      float64         `json:"gap_limit"`
	SpeedupFloor  float64         `json:"speedup_floor"`
	Points        []degradedPoint `json:"points"`
}

// runDegradedBench measures one room size across failure bursts
// {1, 8, 64} (clipped to n/4) in both shapes and writes the trajectory
// to path.
func runDegradedBench(out io.Writer, path string, n, podCount int, gapMeanLimit, gapLimit, speedupFloor float64) error {
	if podCount < 1 {
		return fmt.Errorf("degraded bench needs at least 1 pod, got %d", podCount)
	}
	p := syntheticProfile(n)
	pods, err := coolopt.NewPodSnapshot(p, 0, coolopt.WithPodCount(podCount))
	if err != nil {
		return fmt.Errorf("pod tables n=%d: %w", n, err)
	}
	res := degradedBench{
		GeneratedUnix: benchClock.Now().Unix(),
		GapMeanLimit:  gapMeanLimit, GapLimit: gapLimit, SpeedupFloor: speedupFloor,
	}

	var failures []int
	for _, f := range []int{1, 8, 64} {
		if f <= n/4 {
			failures = append(failures, f)
		}
	}
	shapes := []struct {
		name  string
		burst func(n, f int) []int
	}{
		{"concentrated", faults.ConcentratedBurst},
		{"spread", faults.SpreadBurst},
	}
	loadFracs := []float64{0.2, 0.45, 0.7}

	for _, f := range failures {
		for _, shape := range shapes {
			avoid := shape.burst(n, f)
			blocked := make(map[int]bool, f)
			for _, id := range avoid {
				blocked[id] = true
			}
			pool := make([]int, 0, n-f)
			for i := 0; i < n; i++ {
				if !blocked[i] {
					pool = append(pool, i)
				}
			}
			pt := degradedPoint{N: n, Pods: pods.Pods(), Failures: f, Shape: shape.name}
			var podTotal, flatTotal time.Duration
			var gapSum float64
			for _, frac := range loadFracs {
				load := frac * float64(len(pool))
				var podPlan, flatPlan *coolopt.Plan
				podD, err := bestOf(3, func() error {
					var err error
					podPlan, err = pods.PlanAvoiding(load, avoid)
					return err
				})
				if err != nil {
					return fmt.Errorf("pod degraded plan n=%d f=%d %s load %.1f: %w", n, f, shape.name, load, err)
				}
				flatD, err := bestOf(1, func() error {
					flatPlan = p.PlanOver(pool, load)
					if flatPlan == nil {
						return fmt.Errorf("flat degraded sweep infeasible")
					}
					return nil
				})
				if err != nil {
					return fmt.Errorf("flat degraded plan n=%d f=%d %s load %.1f: %w", n, f, shape.name, load, err)
				}
				podTotal += podD
				flatTotal += flatD
				gap := float64(p.PlanPower(podPlan)-p.PlanPower(flatPlan)) / float64(p.PlanPower(flatPlan))
				if gap < 0 {
					gap = 0 // the pod-local plan beat the flat prefix sweep
				}
				if gap > pt.GapWorst {
					pt.GapWorst = gap
				}
				gapSum += gap
			}
			pt.PodNS = podTotal.Nanoseconds() / int64(len(loadFracs))
			pt.FlatNS = flatTotal.Nanoseconds() / int64(len(loadFracs))
			if pt.PodNS > 0 {
				pt.Speedup = float64(pt.FlatNS) / float64(pt.PodNS)
			}
			pt.GapMean = gapSum / float64(len(loadFracs))

			if pt.GapWorst > gapLimit {
				return fmt.Errorf("degraded gap regression at f=%d %s: worst %.3f%% exceeds limit %.3f%%",
					f, shape.name, 100*pt.GapWorst, 100*gapLimit)
			}
			if pt.GapMean > gapMeanLimit {
				return fmt.Errorf("degraded gap regression at f=%d %s: mean %.3f%% exceeds limit %.3f%%",
					f, shape.name, 100*pt.GapMean, 100*gapMeanLimit)
			}
			if pt.Speedup < speedupFloor {
				return fmt.Errorf("degraded speedup regression at f=%d %s: %.1f× below the %.1f× floor (pod %v vs flat %v)",
					f, shape.name, pt.Speedup, speedupFloor,
					time.Duration(pt.PodNS), time.Duration(pt.FlatNS))
			}
			res.Points = append(res.Points, pt)
			fmt.Fprintf(out, "degraded n=%d (%d pods) f=%d %-12s: pod %v vs flat %v (%.0f×), gap %.3f%% mean %.3f%% worst\n",
				n, pt.Pods, f, shape.name,
				time.Duration(pt.PodNS), time.Duration(pt.FlatNS), pt.Speedup,
				100*pt.GapMean, 100*pt.GapWorst)
		}
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote degraded-planning trajectory to %s\n", path)
	return nil
}

// runDegradedChaos runs the degraded-serving chaos scenario: a pod-only
// engine behind loopback HTTP, hammered with avoid= requests through an
// overload window and a slow snapshot install. Any serving-contract
// violation fails the run.
func runDegradedChaos(out io.Writer, n, podCount int) error {
	rep, err := chaos.RunDegradedServing(chaos.ServingOptions{N: n, Pods: podCount})
	if err != nil {
		return fmt.Errorf("degraded serving chaos: %w", err)
	}
	fmt.Fprintf(out, "degraded serving chaos n=%d (%d pods): %s\n", n, podCount, rep)
	fmt.Fprintln(out, "verdict: every response was 200/400/503, every 503 carried Retry-After, readiness flipped across the install")
	return nil
}
