package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunChaosSuite drives `paperbench -chaos` end to end — the
// acceptance report: the hardened controller survives every scenario
// with zero steady-state violations while the unhardened controller
// demonstrably fails the combined crash + stuck sensor + blackout run.
func TestRunChaosSuite(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "10", "-chaos", "-chaos-duration", "600"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"chaos suite",
		"machine-crash", "stuck-sensor", "crac-refusal", "net-blackout", "combined",
		"zero steady-state T_max violations",
		"unhardened controller failed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "HARDENED CONTROLLER FAILED") {
		t.Fatalf("hardened controller failed the suite:\n%s", out)
	}
}

func TestRunChaosSoakSeed(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "10", "-chaos", "-chaos-duration", "600", "-soak-seed", "5"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "soak-5") {
		t.Fatalf("report missing the soak scenario:\n%s", out)
	}
	if !strings.Contains(out, "randomized fault schedule") {
		t.Fatalf("report missing the soak description:\n%s", out)
	}
}

func TestRunChaosRejectsShortDuration(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "10", "-chaos", "-chaos-duration", "60"}, &buf); err == nil {
		t.Fatal("duration shorter than the fault windows accepted")
	}
}
