package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const jobsJSON = `{"jobs": [
  {"id": "nightly", "work": 2000, "submitS": 0, "deadlineS": 3000},
  {"id": "hourly", "work": 300, "submitS": 500, "deadlineS": 1100}
]}`

func writeJobs(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte(jobsJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWritesTrace(t *testing.T) {
	path := writeJobs(t)
	outPath := filepath.Join(t.TempDir(), "trace.csv")
	var buf bytes.Buffer
	if err := run([]string{"-jobs", path, "-capacity", "10", "-horizon", "3000", "-o", outPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "nightly") {
		t.Fatalf("completions missing:\n%s", buf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "time_s,load_frac") {
		t.Fatalf("trace header missing:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -jobs accepted")
	}
	if err := run([]string{"-jobs", "nope.json"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeJobs(t)
	// Infeasible: capacity far too small.
	if err := run([]string{"-jobs", path, "-capacity", "0.1", "-horizon", "3000"}, &buf); err == nil {
		t.Fatal("infeasible job set accepted")
	}
}
