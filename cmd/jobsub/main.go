// Command jobsub compiles a batch job set into the minimum demand profile
// that meets every deadline (internal/batch) and writes it as a trace CSV
// ready for cmd/traceplay — the front half of the energy-minimal batch
// pipeline.
//
// Usage:
//
//	jobsub -jobs jobs.json [-capacity 20] [-horizon 6000] [-step 50] [-o trace.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"coolopt/internal/batch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jobsub:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jobsub", flag.ContinueOnError)
	jobsPath := fs.String("jobs", "", "job set JSON (required)")
	capacity := fs.Float64("capacity", 20, "cluster capacity in machine units")
	horizon := fs.Float64("horizon", 6000, "scheduling horizon in seconds")
	step := fs.Float64("step", 50, "scheduling step in seconds")
	outPath := fs.String("o", "", "write the demand trace CSV here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobsPath == "" {
		return fmt.Errorf("-jobs is required")
	}

	f, err := os.Open(*jobsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	jobs, err := batch.ReadJobs(f)
	if err != nil {
		return err
	}

	demand, completion, err := batch.Plan(jobs, *capacity, *horizon, *step)
	if err != nil {
		return err
	}
	if err := batch.DeadlinesMet(jobs, completion, *step); err != nil {
		return err
	}

	fmt.Fprintf(out, "%d jobs scheduled; completions:\n", len(jobs))
	ids := make([]string, 0, len(completion))
	for id := range completion {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(out, "  %-22s %8.0f s\n", id, completion[id])
	}

	sink := out
	if *outPath != "" {
		file, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer file.Close()
		sink = file
	}
	if err := demand.WriteCSV(sink); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(out, "wrote demand trace to %s\n", *outPath)
	}
	return nil
}
