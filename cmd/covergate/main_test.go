package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProfile = `mode: atomic
coolopt/internal/core/a.go:10.2,12.10 3 5
coolopt/internal/core/a.go:14.2,15.3 2 0
coolopt/internal/engine/b.go:7.1,9.2 4 1
coolopt/internal/corner/c.go:1.1,2.2 100 0
coolopt/internal/sim/d.go:1.1,2.2 50 50
`

func TestCoverageCombinesPrefixes(t *testing.T) {
	covered, total, err := coverage(strings.NewReader(sampleProfile),
		[]string{"coolopt/internal/core", "coolopt/internal/engine"})
	if err != nil {
		t.Fatal(err)
	}
	// core: 3 covered + 2 uncovered; engine: 4 covered. corner/ must not
	// leak in via the core prefix, sim is outside both.
	if total != 9 || covered != 7 {
		t.Fatalf("covered/total = %d/%d, want 7/9", covered, total)
	}
}

func TestCoverageMergesDuplicateBlocks(t *testing.T) {
	merged := `mode: atomic
coolopt/internal/core/a.go:10.2,12.10 3 0
coolopt/internal/core/a.go:10.2,12.10 3 2
`
	covered, total, err := coverage(strings.NewReader(merged), []string{"coolopt/internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || covered != 3 {
		t.Fatalf("covered/total = %d/%d, want 3/3 (counts must sum across duplicates)", covered, total)
	}
}

func TestCoverageRejectsMalformed(t *testing.T) {
	if _, _, err := coverage(strings.NewReader("mode: atomic\nnot a profile line\n"), []string{"x"}); err == nil {
		t.Fatal("malformed profile accepted")
	}
}

// TestGateEndToEnd drives the command both ways: writing a baseline and
// ratcheting against it, including the failure on a coverage drop.
func TestGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "cover.out")
	if err := os.WriteFile(profile, []byte(sampleProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "coverage_baseline.json")

	if err := run([]string{"-profile", profile, "-baseline", base, "-write-baseline", "-slack", "2"}); err != nil {
		t.Fatalf("write-baseline: %v", err)
	}
	if err := run([]string{"-profile", profile, "-baseline", base}); err != nil {
		t.Fatalf("gate at recorded coverage: %v", err)
	}

	// Remove the engine package's covered block: combined coverage falls
	// from 7/9 to 3/5 (77.8% → 60%), past the 2-point slack.
	dropped := strings.ReplaceAll(sampleProfile,
		"coolopt/internal/engine/b.go:7.1,9.2 4 1\n", "")
	if err := os.WriteFile(profile, []byte(dropped), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-profile", profile, "-baseline", base})
	if err == nil || !strings.Contains(err.Error(), "coverage regression") {
		t.Fatalf("coverage drop passed the gate: %v", err)
	}
}

func TestGateRequiresStatements(t *testing.T) {
	dir := t.TempDir()
	profile := filepath.Join(dir, "cover.out")
	if err := os.WriteFile(profile, []byte(sampleProfile), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", profile, "-packages", "coolopt/internal/nonexistent"}); err == nil {
		t.Fatal("empty prefix selection passed")
	}
}
