// Command covergate is the coverage ratchet for make cover: it computes
// combined statement coverage over the planning kernel packages from a
// go test -coverprofile file and fails if it dropped below the floor
// recorded in the committed baseline. The baseline is refreshed
// deliberately with -write-baseline (which records the measured value
// minus a small slack, so routine run-to-run jitter never breaks CI while
// real coverage regressions do).
//
// Usage:
//
//	covergate -profile cover.out [-baseline coverage_baseline.json]
//	covergate -profile cover.out -write-baseline [-slack 2.0]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// baseline is the committed coverage floor.
type baseline struct {
	// Packages are the import-path prefixes the combined figure covers.
	Packages []string `json:"packages"`
	// MinCoveragePercent is the ratchet: measured combined coverage below
	// this fails the gate.
	MinCoveragePercent float64 `json:"min_coverage_percent"`
	// MeasuredPercent is the value observed when the baseline was
	// written, for context when reading diffs.
	MeasuredPercent float64 `json:"measured_percent"`
}

// block is one coverprofile source block; counts for duplicate blocks
// (merged profiles) are summed, matching go tool cover.
type block struct {
	statements int
	count      int64
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("covergate", flag.ContinueOnError)
	profile := fs.String("profile", "", "coverprofile written by go test -coverprofile (required)")
	baselinePath := fs.String("baseline", "coverage_baseline.json", "committed coverage floor to ratchet against")
	prefixes := fs.String("packages", "coolopt/internal/core,coolopt/internal/engine",
		"comma-separated import-path prefixes whose combined statement coverage is gated")
	write := fs.Bool("write-baseline", false, "record a new floor (measured minus -slack) instead of gating")
	slack := fs.Float64("slack", 2.0, "percentage points subtracted from the measurement when writing the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profile == "" {
		return fmt.Errorf("-profile is required")
	}
	pkgs := strings.Split(*prefixes, ",")

	f, err := os.Open(*profile)
	if err != nil {
		return err
	}
	defer f.Close()
	covered, total, err := coverage(f, pkgs)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *profile, err)
	}
	if total == 0 {
		return fmt.Errorf("%s holds no statements under %s — wrong profile or prefixes", *profile, *prefixes)
	}
	percent := 100 * float64(covered) / float64(total)
	fmt.Printf("covergate: %s: %d/%d statements, %.1f%% combined coverage\n",
		*prefixes, covered, total, percent)

	if *write {
		b := baseline{
			Packages:           pkgs,
			MinCoveragePercent: percent - *slack,
			MeasuredPercent:    percent,
		}
		data, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("covergate: wrote floor %.1f%% to %s\n", b.MinCoveragePercent, *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("no baseline (run with -write-baseline first): %w", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("parse %s: %w", *baselinePath, err)
	}
	if percent < b.MinCoveragePercent {
		return fmt.Errorf("coverage regression: %.1f%% is below the %.1f%% floor in %s (%.1f%% when recorded)",
			percent, b.MinCoveragePercent, *baselinePath, b.MeasuredPercent)
	}
	fmt.Printf("covergate: above the %.1f%% floor\n", b.MinCoveragePercent)
	return nil
}

// coverage parses a coverprofile from r and returns (covered, total)
// statement counts over files whose import path starts with any of the
// given prefixes. Duplicate blocks merge by summing counts.
func coverage(r interface{ Read([]byte) (int, error) }, prefixes []string) (covered, total int, err error) {
	blocks := map[string]*block{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "mode:") {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmt count
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("line %d: %d fields, want 3", line, len(fields))
		}
		name, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return 0, 0, fmt.Errorf("line %d: no position in %q", line, fields[0])
		}
		if !matchesAny(name, prefixes) {
			continue
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, 0, fmt.Errorf("line %d: statements: %w", line, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("line %d: count: %w", line, err)
		}
		if b, dup := blocks[fields[0]]; dup {
			b.count += count
		} else {
			blocks[fields[0]] = &block{statements: stmts, count: count}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for _, b := range blocks {
		total += b.statements
		if b.count > 0 {
			covered += b.statements
		}
	}
	return covered, total, nil
}

// matchesAny reports whether the file's import path (the directory part
// of the coverprofile name) starts with one of the prefixes.
func matchesAny(name string, prefixes []string) bool {
	for _, p := range prefixes {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if strings.HasPrefix(name, p+"/") || name == p {
			return true
		}
	}
	return false
}
