package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"sync"
	"testing"
	"time"

	"coolopt/internal/roomapi"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunFlagError(t *testing.T) {
	var out syncBuffer
	if err := run(context.Background(), []string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-plan-mode", "hier"}, &out); err == nil {
		t.Fatal("-plan-mode hier without -pods accepted")
	}
	if err := run(context.Background(), []string{"-plan-mode", "sideways", "-pods", "2"}, &out); err == nil {
		t.Fatal("bad -plan-mode accepted")
	}
}

// TestRunServesHierarchical boots a pod-backed server and checks the
// hierarchical plan path and the stats endpoint over the wire.
func TestRunServesHierarchical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-machines", "8", "-pods", "4", "-drain", "2s"}, &out)
	}()

	urlRe := regexp.MustCompile(`http://[0-9.:]+`)
	var base string
	deadline := time.Now().Add(60 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(50 * time.Millisecond):
		}
		base = urlRe.FindString(out.String())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string, dst any) int {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if dst != nil && resp.StatusCode < 400 {
			if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var plan roomapi.PlanResult
	if code := get("/v1/plan?load=2&mode=hier", &plan); code != 200 {
		t.Fatalf("/v1/plan mode=hier status %d", code)
	}
	if !plan.Hierarchical {
		t.Fatalf("mode=hier answer not hierarchical: %+v", plan)
	}
	var stats map[string]any
	if code := get("/v1/stats", &stats); code != 200 {
		t.Fatalf("/v1/stats status %d", code)
	}
	if pods, ok := stats["pods"].(float64); !ok || pods != 4 {
		t.Fatalf("stats pods = %v, want 4", stats["pods"])
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

// TestRunReprofilesUntilCanceled boots the server with the continuous
// re-profiler on a fast tick and checks that planning traffic and the
// sampling loop coexist: queries answer, the room stays consistent, and
// shutdown still drains (the re-profiler goroutine must stop too).
func TestRunReprofilesUntilCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-machines", "6", "-drain", "2s",
			"-reprofile", "10ms", "-reprofile-min-samples", "5",
		}, &out)
	}()

	urlRe := regexp.MustCompile(`http://[0-9.:]+`)
	var base string
	deadline := time.Now().Add(60 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(50 * time.Millisecond):
		}
		base = urlRe.FindString(out.String())
	}
	if !regexp.MustCompile(`continuous re-profiling every`).MatchString(out.String()) {
		t.Fatalf("re-profiler never announced; output:\n%s", out.String())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	// Let the sampler tick a few times while planning queries ride along.
	for i := 0; i < 5; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/plan?load=2", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var plan roomapi.PlanResult
		if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || len(plan.On) == 0 {
			t.Fatalf("plan %d: status %d, %+v", i, resp.StatusCode, plan)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A room that still matches its own profile must not be patched: the
	// re-profiler's drift gate holds the line against sensor noise.
	if regexp.MustCompile(`re-profiled \d+ machines`).MatchString(out.String()) {
		t.Fatalf("undrifted room was patched; output:\n%s", out.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}

func TestRunServesPlansUntilCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-machines", "6", "-drain", "2s"}, &out)
	}()

	urlRe := regexp.MustCompile(`http://[0-9.:]+`)
	var base string
	deadline := time.Now().Add(60 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; output:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(50 * time.Millisecond):
		}
		base = urlRe.FindString(out.String())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string, dst any) int {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if dst != nil && resp.StatusCode < 400 {
			if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	var plan roomapi.PlanResult
	if code := get("/v1/plan?load=2", &plan); code != 200 {
		t.Fatalf("/v1/plan status %d", code)
	}
	if len(plan.On) == 0 {
		t.Fatalf("empty plan: %+v", plan)
	}
	var info roomapi.RoomInfo
	if code := get("/v1/room", &info); code != 200 {
		t.Fatalf("/v1/room status %d", code)
	}
	if info.Machines != 6 {
		t.Fatalf("machines = %d, want 6", info.Machines)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
}
