// Command pland serves plans over HTTP: it builds and profiles a
// simulated machine room, freezes the fitted model into an immutable
// snapshot, and serves the planning surface off the plan engine —
//
//	GET /v1/plan?load=12.5[&method=8][&mode=exact|hier][&avoid=3,7][&safe=true][&supply=22][&margin=2.5]
//	GET /v1/consolidate?load=12.5[&mink=13]
//	GET /v1/maxload?budget=5000
//	GET /v1/stats                      counters + per-endpoint latency
//	GET /v1/healthz                    liveness
//	GET /v1/readyz                     readiness (503 while installing / breaker open)
//
// alongside the full room control plane of cmd/roomd (the /v1/sensors,
// /v1/advance, … endpoints operate the simulated room the model was
// profiled from). Planning queries read only the frozen snapshot, so
// they are served concurrently and never queue behind room mutations.
//
// With -pods P the server additionally builds pod-sharded consolidation
// tables and installs them alongside the exact snapshot: requests may
// then pick the planning path with &mode=, and -plan-mode chooses what
// the server installs — "both" (the default with -pods), or "hier" to
// serve pod-only, the configuration for rooms past the whole-room table
// cap.
//
// With -reprofile D the server also runs a continuous re-profiler: every
// D it folds one sensor sweep into per-machine recursive-least-squares
// fits of the Eq. 8 thermal coefficients plus a pooled fit of the Eq. 9
// power model (W1, W2), and when a well-conditioned fit drifts past
// -reprofile-reltol it trickles the drift through the pipelined
// patch-install path (prepare off the hot path, epoch-checked
// pointer-swap commit) — the model tracks the room without readiness
// ever flapping. Thermal drift lands as incremental patches; power
// drift moves every machine's kinetic boundary and forces the full
// rebuild it requires.
//
// On SIGINT or SIGTERM the server stops accepting connections, drains
// in-flight requests for -drain, and exits cleanly.
//
// Usage:
//
//	pland [-addr :7078] [-seed N] [-machines N] [-racks R -perrack M] [-pods P] [-pod-depth D] [-plan-mode exact|hier|both] [-timeout 0] [-max-inflight 0] [-drain 5s] [-reprofile 0] [-reprofile-reltol 0.02] [-reprofile-min-samples 64]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"coolopt"
	"coolopt/internal/machineroom"
	"coolopt/internal/profiling"
	"coolopt/internal/roomapi"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pland:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pland", flag.ContinueOnError)
	addr := fs.String("addr", ":7078", "listen address")
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	machines := fs.Int("machines", 20, "number of machines (single rack)")
	racks := fs.Int("racks", 0, "number of racks in a row (0 = single rack of -machines)")
	perRack := fs.Int("perrack", 20, "machines per rack when -racks is set")
	workers := fs.Int("workers", 0, "preprocessing worker pool (0 = all cores)")
	pods := fs.Int("pods", 0, "pod count for hierarchical planning tables (0 = exact only)")
	podDepth := fs.Int("pod-depth", 0, "planner tree depth with -pods: 2 = flat pods, 3 = pods of pods (0 = calibrated default for the room size)")
	planMode := fs.String("plan-mode", "", "tables to serve: exact, hier, or both (default: both with -pods, else exact)")
	timeout := fs.Duration("timeout", 0, "server-side compute deadline per planning request (0 = client deadline only)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent plan computations before shedding 503s (0 = unbounded)")
	drain := fs.Duration("drain", 5*time.Second, "in-flight request drain budget on shutdown")
	reprofile := fs.Duration("reprofile", 0, "continuous re-profiling: sample the room's sensors this often and trickle drifted Eq. 8 coefficients through pipelined patch installs (0 = off)")
	reprofileTol := fs.Float64("reprofile-reltol", 0.02, "relative coefficient drift that triggers a patch install")
	reprofileMin := fs.Int("reprofile-min-samples", 64, "sensor sweeps required before a machine's re-fitted coefficients are trusted")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planMode == "" {
		if *pods > 0 {
			*planMode = "both"
		} else {
			*planMode = "exact"
		}
	}
	switch *planMode {
	case "exact":
	case "hier", "both":
		if *pods <= 0 {
			return fmt.Errorf("-plan-mode %s requires -pods", *planMode)
		}
	default:
		return fmt.Errorf("bad -plan-mode %q (want exact, hier, or both)", *planMode)
	}

	opts := []coolopt.Option{coolopt.WithSeed(*seed)}
	if *maxInFlight > 0 {
		opts = append(opts, coolopt.WithEngineOptions(coolopt.WithMaxInFlight(*maxInFlight)))
	}
	n := *machines
	if *racks > 0 {
		opts = append(opts, coolopt.WithRow(*racks, *perRack))
		n = *racks * *perRack
	} else {
		opts = append(opts, coolopt.WithMachines(n))
	}
	pre := []coolopt.PreprocessOption{coolopt.WithMaxMachines(n)}
	if *workers > 0 {
		pre = append(pre, coolopt.WithPreprocessWorkers(*workers))
	}
	if *reprofile > 0 {
		// Retain the crossing lists so the re-profiling trickle lands
		// through incremental Snapshot.Patch instead of full rebuilds.
		pre = append(pre, coolopt.WithPatchSupport())
	}
	opts = append(opts, coolopt.WithPreprocess(pre...))
	if *pods > 0 {
		podOpts := []coolopt.PodOption{coolopt.WithPodCount(*pods)}
		if *podDepth > 0 {
			podOpts = append(podOpts, coolopt.WithPodDepth(*podDepth))
		}
		if *workers > 0 {
			podOpts = append(podOpts, coolopt.WithPodBuildWorkers(*workers))
		}
		opts = append(opts, coolopt.WithHierarchy(podOpts...))
	}

	fmt.Fprintf(out, "pland: profiling a %d-machine simulated room…\n", n)
	sys, err := coolopt.NewSystem(opts...)
	if err != nil {
		return err
	}
	if *planMode == "hier" {
		// Pod-only serving: drop the whole-room tables and answer every
		// consolidating query hierarchically.
		if err := sys.Engine().InstallHierarchical(nil, sys.Pods()); err != nil {
			return err
		}
	}
	apiOpts := []roomapi.Option{roomapi.WithEngine(sys.Engine())}
	if *timeout > 0 {
		apiOpts = append(apiOpts, roomapi.WithRequestTimeout(*timeout))
	}
	handler, err := roomapi.NewServer(sys.Sim(), apiOpts...)
	if err != nil {
		return err
	}

	if *reprofile > 0 {
		rf, err := profiling.NewRefresher(profiling.RefreshConfig{
			Room:       sys.Sim(),
			Reference:  sys.Profile(),
			MinSamples: *reprofileMin,
			RelTol:     *reprofileTol,
			// With a utilization source the refresher also pools a shared
			// Eq. 9 power fit, so drift batches can move W1/W2 — both
			// halves of Eq. 8 — through the same patch-install path.
			Loads: sys.Sim().Load,
		})
		if err != nil {
			return fmt.Errorf("re-profiler: %w", err)
		}
		stopRf := make(chan struct{})
		var rfWG sync.WaitGroup
		rfWG.Add(1)
		go func() {
			defer rfWG.Done()
			ticker := time.NewTicker(*reprofile)
			defer ticker.Stop()
			for {
				select {
				case <-stopRf:
					return
				case <-ticker.C:
					// Sample under the server's room lock so the sweep
					// never races a mutating endpoint, then trickle any
					// drift through the pipelined install path: the
					// prepare builds off the hot path and the commit is
					// an epoch-checked pointer swap, so serving never
					// sheds around it.
					handler.RoomLocked(func(machineroom.Room) { rf.Observe() })
					batch := rf.Drifted()
					if len(batch) == 0 {
						continue
					}
					epoch, err := sys.Engine().InstallPatch(batch)
					if err != nil {
						fmt.Fprintf(out, "pland: re-profile install failed: %v\n", err)
						continue
					}
					fmt.Fprintf(out, "pland: re-profiled %d machines, installed epoch %d\n", len(batch), epoch)
				}
			}
		}()
		defer func() {
			close(stopRf)
			rfWG.Wait()
		}()
		fmt.Fprintf(out, "pland: continuous re-profiling every %s (tol %.1f%%, min %d samples)\n",
			*reprofile, 100**reprofileTol, *reprofileMin)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	shape := "exact tables"
	if p := sys.Pods(); p != nil {
		shape = fmt.Sprintf("%s, %d pods, depth %d", *planMode, p.Pods(), p.Depth())
	}
	fmt.Fprintf(out, "pland: serving plans for the %d-machine room on http://%s (snapshot epoch %d, %s)\n",
		n, ln.Addr(), sys.Engine().Epoch(), shape)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "pland: signal received, draining for up to %s…\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close() // drain budget exhausted: cut remaining connections
		<-served
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "pland: drained, bye")
	return nil
}
