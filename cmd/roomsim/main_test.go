package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrintsMeasurement(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-method", "8", "-load", "0.5"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"scenario:", "total power:", "hottest CPU:", "violated: false"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-method", "9"}, &buf); err == nil {
		t.Fatal("method 9 accepted")
	}
	if err := run([]string{"-method", "0"}, &buf); err == nil {
		t.Fatal("method 0 accepted")
	}
	if err := run([]string{"-machines", "8", "-load", "2"}, &buf); err == nil {
		t.Fatal("load > 1 accepted")
	}
}
