// Command roomsim runs one evaluation scenario on the simulated machine
// room and prints the steady-state measurement — the single-cell version
// of what cmd/paperbench sweeps.
//
// Usage:
//
//	roomsim [-seed N] [-machines N] -method 8 -load 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coolopt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roomsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("roomsim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	machines := fs.Int("machines", 20, "number of machines in the rack")
	method := fs.Int("method", 8, "scenario number 1–8 (paper Fig. 4)")
	loadFrac := fs.Float64("load", 0.5, "total load as a fraction of capacity (0–1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *method < 1 || *method > 8 {
		return fmt.Errorf("-method %d outside 1–8", *method)
	}

	sys, err := coolopt.NewSystem(coolopt.WithSeed(*seed), coolopt.WithMachines(*machines))
	if err != nil {
		return err
	}
	m := coolopt.Method(*method)
	meas, err := sys.Evaluate(m, *loadFrac)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scenario:        %v\n", m)
	fmt.Fprintf(out, "load:            %.0f%% (carried %.2f units)\n", meas.LoadPct, meas.CarriedLoad)
	fmt.Fprintf(out, "total power:     %.1f W (servers %.1f + cooling %.1f)\n",
		meas.TotalW, meas.ServerW, meas.CoolW)
	fmt.Fprintf(out, "machines on:     %d / %d\n", meas.MachinesOn, sys.Size())
	fmt.Fprintf(out, "supply temp:     %.2f °C (plan asked %.2f)\n", meas.SupplyC, meas.PlanTAcC)
	fmt.Fprintf(out, "hottest CPU:     %.2f °C (T_max %.1f, violated: %v)\n",
		meas.MaxCPUC, sys.Profile().TMaxC, meas.Violated)
	return nil
}
