package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coolopt/internal/roomapi"
	"coolopt/internal/sim"
)

func newRoomServer(t *testing.T) *httptest.Server {
	t.Helper()
	room, err := sim.NewDefault(3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := roomapi.NewServer(room)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestSubcommandDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"status"}, &buf); err == nil {
		t.Fatal("status without -room accepted")
	}
}

func TestStatus(t *testing.T) {
	ts := newRoomServer(t)
	var buf bytes.Buffer
	if err := run([]string{"status", "-room", ts.URL}, &buf); err != nil {
		t.Fatalf("status: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"20 machines", "CRAC:", "total server power"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestProfileThenApply(t *testing.T) {
	ts := newRoomServer(t)
	dir := t.TempDir()
	docPath := filepath.Join(dir, "profile.json")

	var buf bytes.Buffer
	if err := run([]string{"profile", "-room", ts.URL, "-o", docPath}, &buf); err != nil {
		t.Fatalf("profile: %v", err)
	}
	if _, err := os.Stat(docPath); err != nil {
		t.Fatalf("document not written: %v", err)
	}
	if !strings.Contains(buf.String(), "power model") {
		t.Fatalf("profile output:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{
		"apply", "-room", ts.URL, "-profile", docPath, "-load", "0.5", "-settle", "1500",
	}, &buf); err != nil {
		t.Fatalf("apply: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"applied plan", "steady state:", "hottest CPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("apply output missing %q:\n%s", want, out)
		}
	}
}

func TestReprofile(t *testing.T) {
	ts := newRoomServer(t)
	dir := t.TempDir()
	docPath := filepath.Join(dir, "profile.json")
	driftPath := filepath.Join(dir, "drift.json")

	var buf bytes.Buffer
	if err := run([]string{"profile", "-room", ts.URL, "-o", docPath}, &buf); err != nil {
		t.Fatalf("profile: %v", err)
	}

	// The room still matches the profile we just fitted, so a short ride
	// on live traffic must not fabricate drift — the batch is empty and
	// the document still lands on disk for the install pipeline to poll.
	buf.Reset()
	if err := run([]string{
		"reprofile", "-room", ts.URL, "-profile", docPath,
		"-sweeps", "30", "-interval", "2", "-min-samples", "10", "-o", driftPath,
	}, &buf); err != nil {
		t.Fatalf("reprofile: %v", err)
	}
	if !strings.Contains(buf.String(), "no machine drifted") {
		t.Fatalf("undrifted room produced a batch:\n%s", buf.String())
	}
	data, err := os.ReadFile(driftPath)
	if err != nil {
		t.Fatalf("drift document not written: %v", err)
	}
	var doc driftDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("drift document malformed: %v", err)
	}
	if doc.Sweeps != 30 || len(doc.Drifted) != 0 {
		t.Fatalf("drift document = %+v, want 30 sweeps and no drift", doc)
	}
}

func TestReprofileValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"reprofile", "-room", "http://unused"}, &buf); err == nil {
		t.Fatal("reprofile without -profile accepted")
	}
	ts := newRoomServer(t)
	dir := t.TempDir()
	docPath := filepath.Join(dir, "profile.json")
	if err := run([]string{"profile", "-room", ts.URL, "-o", docPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"reprofile", "-room", ts.URL, "-profile", docPath, "-sweeps", "0"}, &buf); err == nil {
		t.Fatal("zero sweeps accepted")
	}
}

func TestApplyValidation(t *testing.T) {
	ts := newRoomServer(t)
	var buf bytes.Buffer
	if err := run([]string{"apply", "-room", ts.URL}, &buf); err == nil {
		t.Fatal("apply without -profile accepted")
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "profile.json")
	if err := run([]string{"profile", "-room", ts.URL, "-o", docPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"apply", "-room", ts.URL, "-profile", docPath, "-load", "2"}, &buf); err == nil {
		t.Fatal("overload accepted")
	}
	if err := run([]string{"apply", "-room", ts.URL, "-profile", docPath, "-margin", "-1"}, &buf); err == nil {
		t.Fatal("negative margin accepted")
	}
}
