// Command ctrld is the central controller for a machine room served over
// HTTP (see cmd/roomd for the virtual testbed). It runs the paper's
// methodology remotely:
//
//	ctrld status    -room http://host:7077
//	ctrld profile   -room http://host:7077 -o profile.json
//	ctrld apply     -room http://host:7077 -profile profile.json -load 0.5 [-no-consolidation] [-settle 1200] [-margin 2.5]
//	ctrld reprofile -room http://host:7077 -profile profile.json [-sweeps 120] [-interval 5] [-o drift.json]
//
// `profile` replays the §IV-A protocol over the network and writes the
// fitted profile document; `apply` computes the energy-optimal plan for a
// load and pushes it (power states, per-machine loads, CRAC set point),
// then waits for steady state and reports the metered outcome.
// `reprofile` rides live traffic instead of dedicating the room to a
// sweep: it folds streaming sensor reads into per-machine
// recursive-least-squares fits of the Eq. 8 coefficients and writes the
// machines whose well-conditioned fits drifted from the reference
// profile as a patch-ready drift batch — the input to a pipelined
// incremental install (Engine.InstallPatch) rather than a full resweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"coolopt"
	"coolopt/internal/profiling"
	"coolopt/internal/roomclient"
	"coolopt/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ctrld:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ctrld <status|profile|apply|reprofile> [flags]")
	}
	switch args[0] {
	case "status":
		return runStatus(args[1:], out)
	case "profile":
		return runProfile(args[1:], out)
	case "apply":
		return runApply(args[1:], out)
	case "reprofile":
		return runReprofile(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want status, profile, apply, or reprofile)", args[0])
	}
}

func dial(roomURL string) (*roomclient.Room, error) {
	if roomURL == "" {
		return nil, fmt.Errorf("-room is required")
	}
	return roomclient.Dial(roomURL, nil)
}

func runStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctrld status", flag.ContinueOnError)
	roomURL := fs.String("room", "", "room API base URL (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	room, err := dial(*roomURL)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "room: %d machines, t = %.0f s\n", room.Size(), room.Time())
	fmt.Fprintf(out, "CRAC: set point %.2f °C, supply %.2f °C, return %.2f °C, %.0f W\n",
		room.SetPoint(), room.Supply(), room.ReturnTemp(), room.MeasuredCRACPower())
	var total float64
	fmt.Fprintf(out, "%-4s%6s%12s%12s\n", "m", "on", "cpu °C", "power W")
	for i := 0; i < room.Size(); i++ {
		p := room.MeasuredServerPower(i)
		total += p
		fmt.Fprintf(out, "%-4d%6v%12.1f%12.1f\n", i, room.IsOn(i), room.MeasuredCPUTemp(i), p)
	}
	fmt.Fprintf(out, "total server power: %.0f W\n", total)
	return room.Err()
}

func runProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctrld profile", flag.ContinueOnError)
	roomURL := fs.String("room", "", "room API base URL (required)")
	outPath := fs.String("o", "profile.json", "output profile document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	room, err := dial(*roomURL)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "profiling %d machines over the network (this replays the full §IV-A protocol)…\n", room.Size())
	res, err := profiling.Run(profiling.Config{Sim: room})
	if err != nil {
		return err
	}
	if err := room.Err(); err != nil {
		return fmt.Errorf("transport errors during profiling: %w", err)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := profiling.WriteDocument(f, res.Document()); err != nil {
		return err
	}
	fmt.Fprintf(out, "power model: P = %.2f·L + %.2f W (R² %.4f); cooling %.1f W/°C\n",
		res.Profile.W1, res.Profile.W2, res.PowerFit.R2, res.Profile.CoolFactor)
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

func runApply(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctrld apply", flag.ContinueOnError)
	roomURL := fs.String("room", "", "room API base URL (required)")
	profilePath := fs.String("profile", "", "profile document from `ctrld profile` (required)")
	loadFrac := fs.Float64("load", 0.5, "total load as a fraction of capacity (0–1]")
	noCons := fs.Bool("no-consolidation", false, "keep every machine powered on")
	settle := fs.Float64("settle", 1200, "seconds to wait for steady state")
	margin := fs.Float64("margin", 2.5, "supply-temperature guard band in °C")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profilePath == "" {
		return fmt.Errorf("-profile is required")
	}
	if *loadFrac <= 0 || *loadFrac > 1 {
		return fmt.Errorf("-load %v outside (0, 1]", *loadFrac)
	}
	if *margin < 0 {
		return fmt.Errorf("-margin %v must be non-negative", *margin)
	}

	docFile, err := os.Open(*profilePath)
	if err != nil {
		return err
	}
	defer docFile.Close()
	doc, err := profiling.ReadDocument(docFile)
	if err != nil {
		return err
	}

	room, err := dial(*roomURL)
	if err != nil {
		return err
	}
	if room.Size() != doc.Profile.Size() {
		return fmt.Errorf("profile covers %d machines but the room has %d",
			doc.Profile.Size(), room.Size())
	}

	opt, err := coolopt.NewOptimizer(doc.Profile)
	if err != nil {
		return err
	}
	load := *loadFrac * float64(room.Size())
	var plan *coolopt.Plan
	if *noCons {
		plan, err = opt.PlanNoConsolidation(load)
	} else {
		plan, err = opt.Plan(load)
	}
	if err != nil {
		return err
	}

	// Push the plan: power on, load, power off, set point.
	onSet := make(map[int]bool, len(plan.On))
	for _, i := range plan.On {
		onSet[i] = true
	}
	for i := 0; i < room.Size(); i++ {
		if onSet[i] {
			if err := room.SetPower(i, true); err != nil {
				return err
			}
			if err := room.SetLoad(i, clamp01(plan.Loads[i])); err != nil {
				return err
			}
		}
	}
	for i := 0; i < room.Size(); i++ {
		if !onSet[i] {
			if err := room.SetPower(i, false); err != nil {
				return err
			}
		}
	}
	var predictedW units.Watts
	for _, i := range plan.On {
		predictedW += doc.Profile.ServerPower(plan.Loads[i])
	}
	desired := plan.TAcC - units.Celsius(*margin)
	if desired < units.Celsius(doc.Profile.TAcMinC) {
		desired = units.Celsius(doc.Profile.TAcMinC)
	}
	room.SetSetPoint(float64(doc.Calibration.SetPointFor(desired, predictedW)))

	fmt.Fprintf(out, "applied plan: %d machines on, commanded supply %.2f °C; settling %.0f s…\n",
		len(plan.On), desired, *settle)
	room.Run(*settle)

	var serverW float64
	maxCPU := -1e9
	for i := 0; i < room.Size(); i++ {
		serverW += room.MeasuredServerPower(i)
		if room.IsOn(i) {
			if temp := room.MeasuredCPUTemp(i); temp > maxCPU {
				maxCPU = temp
			}
		}
	}
	coolW := room.MeasuredCRACPower()
	fmt.Fprintf(out, "steady state: %.0f W total (servers %.0f + cooling %.0f)\n",
		serverW+coolW, serverW, coolW)
	fmt.Fprintf(out, "supply %.2f °C, hottest CPU %.1f °C (T_max %.1f)\n",
		room.Supply(), maxCPU, doc.Profile.TMaxC)
	return room.Err()
}

// driftDocument is the JSON shape `ctrld reprofile` writes: a
// patch-ready batch of re-fitted machine coefficients.
type driftDocument struct {
	// RoomTime is the room's simulated clock when the batch was emitted.
	RoomTime float64 `json:"room_time_s"`
	// Sweeps is how many sensor sweeps the fits accumulated.
	Sweeps int `json:"sweeps"`
	// Drifted is the batch, ready for Engine.InstallPatch.
	Drifted []coolopt.MachineDelta `json:"drifted"`
}

func runReprofile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ctrld reprofile", flag.ContinueOnError)
	roomURL := fs.String("room", "", "room API base URL (required)")
	profilePath := fs.String("profile", "", "reference profile document from `ctrld profile` (required)")
	sweeps := fs.Int("sweeps", 120, "sensor sweeps to fold into the fits")
	interval := fs.Float64("interval", 5, "simulated seconds the room runs between sweeps")
	relTol := fs.Float64("reltol", 0.02, "relative coefficient drift that makes a machine part of the batch")
	minSamples := fs.Int("min-samples", 64, "sweeps required before a machine's fit is trusted")
	outPath := fs.String("o", "drift.json", "output drift batch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profilePath == "" {
		return fmt.Errorf("-profile is required")
	}
	if *sweeps <= 0 || *interval <= 0 {
		return fmt.Errorf("-sweeps and -interval must be positive")
	}

	docFile, err := os.Open(*profilePath)
	if err != nil {
		return err
	}
	defer docFile.Close()
	doc, err := profiling.ReadDocument(docFile)
	if err != nil {
		return err
	}
	room, err := dial(*roomURL)
	if err != nil {
		return err
	}
	if room.Size() != doc.Profile.Size() {
		return fmt.Errorf("profile covers %d machines but the room has %d",
			doc.Profile.Size(), room.Size())
	}
	rf, err := profiling.NewRefresher(profiling.RefreshConfig{
		Room:       room,
		Reference:  doc.Profile,
		MinSamples: *minSamples,
		RelTol:     *relTol,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "re-profiling %d machines over %d sweeps of live traffic (%.0f s apart)…\n",
		room.Size(), *sweeps, *interval)
	for s := 0; s < *sweeps; s++ {
		rf.Observe()
		room.Run(*interval)
	}
	if err := room.Err(); err != nil {
		return fmt.Errorf("transport errors during re-profiling: %w", err)
	}

	batch := rf.Drifted()
	if batch == nil {
		batch = []coolopt.MachineDelta{} // marshal an empty batch as [], not null
	}
	res := driftDocument{RoomTime: room.Time(), Sweeps: *sweeps, Drifted: batch}
	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if len(batch) == 0 {
		fmt.Fprintf(out, "no machine drifted past %.1f%%; wrote empty batch to %s\n", 100**relTol, *outPath)
		return nil
	}
	for _, d := range batch {
		ref := doc.Profile.Machines[d.ID]
		fmt.Fprintf(out, "machine %d drifted: α %.4f→%.4f, β %.4f→%.4f, γ %.3f→%.3f\n",
			d.ID, ref.Alpha, d.Machine.Alpha, ref.Beta, d.Machine.Beta, ref.Gamma, d.Machine.Gamma)
	}
	fmt.Fprintf(out, "wrote %d-machine drift batch to %s (feed it to a pipelined patch install)\n",
		len(batch), *outPath)
	return nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
