// Command traceplay replays a varying-demand trace on the simulated
// machine room under the re-planning controller (the dynamic-workload
// extension of the paper's steady-state solution) and compares it against
// a static operator that provisions once for the peak.
//
// Usage:
//
//	traceplay [-seed N] [-duration 4000] [-trace file.csv | -diurnal]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coolopt"
	"coolopt/internal/controller"
	"coolopt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceplay:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceplay", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	duration := fs.Float64("duration", 4000, "simulated seconds to replay")
	tracePath := fs.String("trace", "", "demand trace CSV (time_s,load_frac); default: synthetic diurnal")
	peak := fs.Float64("peak", 0.85, "static baseline provisions for this load fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	var err error
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ParseCSV(f)
		if err != nil {
			return err
		}
	} else {
		tr, err = trace.Diurnal(*duration, *duration/40, 0.5, 0.3)
		if err != nil {
			return err
		}
	}

	sys, err := coolopt.NewSystem(coolopt.WithSeed(*seed))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "replaying %.0f s of demand on the profiled room…\n\n", *duration)
	optimal, err := controller.Run(controller.Config{Sys: sys}, tr, *duration)
	if err != nil {
		return err
	}
	staticTrace, err := trace.Steps(1e9, *peak)
	if err != nil {
		return err
	}
	static, err := controller.Run(controller.Config{
		Sys:             sys,
		Method:          coolopt.EvenNoACNoCons,
		ReplanIntervalS: 1e9,
		Hysteresis:      1,
	}, staticTrace, *duration)
	if err != nil {
		return err
	}

	print := func(name string, r *controller.Result) {
		fmt.Fprintf(out, "%-28s avg %7.1f W   energy %8.0f kJ   replans %3d   guard %2d   T_max exceeded %4.0f s   hottest %.1f °C\n",
			name, r.AvgPowerW, r.EnergyJ/1000, r.Replans, r.GuardActivations, r.ViolationS, r.MaxCPUC)
	}
	print("re-planning optimal (#8):", optimal)
	print("static peak provisioning:", static)
	saving := (static.AvgPowerW - optimal.AvgPowerW) / static.AvgPowerW * 100
	fmt.Fprintf(out, "\nre-planning saves %.1f%% versus static peak provisioning on this trace\n", saving)
	return nil
}
