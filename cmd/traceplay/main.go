// Command traceplay replays a varying-demand trace on the simulated
// machine room under the re-planning controller (the dynamic-workload
// extension of the paper's steady-state solution) and compares it against
// a static operator that provisions once for the peak.
//
// With -faults the replay instead runs under an injected fault schedule
// (see internal/faults; onsets are seconds into the replay) and is
// compared against a fault-free run of the same trace: the report shows
// what surviving the faults cost in energy and how the controller
// degraded. Schedules with transport faults are automatically served over
// a loopback HTTP room so the network failures are real.
//
// Usage:
//
//	traceplay [-seed N] [-duration 4000] [-trace file.csv | -diurnal] [-faults schedule.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coolopt"
	"coolopt/internal/chaos"
	"coolopt/internal/controller"
	"coolopt/internal/faults"
	"coolopt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceplay:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceplay", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	duration := fs.Float64("duration", 4000, "simulated seconds to replay")
	tracePath := fs.String("trace", "", "demand trace CSV (time_s,load_frac); default: synthetic diurnal")
	peak := fs.Float64("peak", 0.85, "static baseline provisions for this load fraction")
	faultsPath := fs.String("faults", "", "fault schedule JSON (see internal/faults); onsets are seconds into the replay")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *trace.Trace
	var err error
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ParseCSV(f)
		if err != nil {
			return err
		}
	} else {
		tr, err = trace.Diurnal(*duration, *duration/40, 0.5, 0.3)
		if err != nil {
			return err
		}
	}

	sys, err := coolopt.NewSystem(coolopt.WithSeed(*seed))
	if err != nil {
		return err
	}

	if *faultsPath != "" {
		return runFaulted(out, sys, tr, *duration, *faultsPath, *seed)
	}

	fmt.Fprintf(out, "replaying %.0f s of demand on the profiled room…\n\n", *duration)
	optimal, err := controller.Run(controller.Config{Sys: sys}, tr, *duration)
	if err != nil {
		return err
	}
	staticTrace, err := trace.Steps(1e9, *peak)
	if err != nil {
		return err
	}
	static, err := controller.Run(controller.Config{
		Sys:             sys,
		Method:          coolopt.EvenNoACNoCons,
		ReplanIntervalS: 1e9,
		Hysteresis:      1,
	}, staticTrace, *duration)
	if err != nil {
		return err
	}

	print := func(name string, r *controller.Result) {
		fmt.Fprintf(out, "%-28s avg %7.1f W   energy %8.0f kJ   replans %3d   guard %2d   T_max exceeded %4.0f s   hottest %.1f °C\n",
			name, r.AvgPowerW, r.EnergyJ/1000, r.Replans, r.GuardActivations, r.ViolationS, r.MaxCPUC)
	}
	print("re-planning optimal (#8):", optimal)
	print("static peak provisioning:", static)
	saving := (static.AvgPowerW - optimal.AvgPowerW) / static.AvgPowerW * 100
	fmt.Fprintf(out, "\nre-planning saves %.1f%% versus static peak provisioning on this trace\n", saving)
	return nil
}

// runFaulted replays the trace twice — fault-free and under the schedule —
// and reports how the hardened controller degraded and what it cost.
func runFaulted(out io.Writer, sys *coolopt.System, tr *trace.Trace,
	durationS float64, path string, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sched, err := faults.ParseJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := sched.Validate(sys.Size()); err != nil {
		return err
	}

	fmt.Fprintf(out, "replaying %.0f s of demand under %d scheduled faults…\n\n",
		durationS, len(sched.Events))
	clean, err := controller.Run(controller.Config{Sys: sys.Clone(seed)}, tr, durationS)
	if err != nil {
		return fmt.Errorf("fault-free run: %w", err)
	}

	faulted := sys.Clone(seed)
	startClock := faulted.Sim().Time()
	room, truth, cleanup, err := chaos.Wire(faulted, sched.Rebase(startClock), -1)
	if err != nil {
		return err
	}
	defer cleanup()
	res, err := controller.Run(controller.Config{Sys: faulted, Room: room, Truth: truth}, tr, durationS)
	if err != nil {
		return fmt.Errorf("faulted run: %w", err)
	}

	print := func(name string, r *controller.Result) {
		fmt.Fprintf(out, "%-22s avg %7.1f W   energy %8.0f kJ   replans %3d   T_max exceeded %4.0f s   steady-state %4.0f s   hottest %.1f °C\n",
			name, r.AvgPowerW, r.EnergyJ/1000, r.Replans,
			r.ViolationS, r.ViolationOutsideRecoveryS, r.MaxCPUC)
	}
	print("fault-free baseline:", clean)
	print("hardened under faults:", res)
	fmt.Fprintf(out, "\nsurviving the faults cost %+.1f%% energy; degradations: "+
		"%d machine failures, %d sensor rejects, %d quarantines, %d safe-mode entries (%.0f s), %d transport errors\n",
		(res.EnergyJ-clean.EnergyJ)/clean.EnergyJ*100,
		res.MachineFailures, res.SensorRejects, res.SensorsQuarantined,
		res.SafeModeActivations, res.SafeModeS, res.TransportErrors)
	if len(res.Events) > 0 {
		fmt.Fprintln(out, "\ndegradation log:")
		for _, e := range res.Events {
			target := "-"
			if e.Machine >= 0 {
				target = fmt.Sprintf("%d", e.Machine)
			}
			rel := e.TimeS - startClock
			if rel < 0 {
				rel = 0 // a blackout can stamp an event while the clock reads zero
			}
			fmt.Fprintf(out, "  t=%6.0f s  %-18s machine %-3s %s\n",
				rel, e.Kind, target, e.Detail)
		}
	}
	return nil
}
