package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDiurnalDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-duration", "600"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"re-planning optimal", "static peak provisioning", "saves"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte("0,0.3\n200,0.7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-duration", "400", "-trace", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "replans") {
		t.Fatalf("output missing replans:\n%s", buf.String())
	}
}

func TestRunWithFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "faults.json")
	sched := `{"events": [
		{"kind": "machine_crash", "atS": 100, "durationS": 300, "machine": 0},
		{"kind": "net_500", "fromRequest": 40, "requests": 5}
	]}`
	if err := os.WriteFile(path, []byte(sched), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-duration", "600", "-faults", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"fault-free baseline", "hardened under faults", "steady-state", "degradations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trace", "missing.csv"}, &buf); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := run([]string{"-faults", "missing.json"}, &buf); err == nil {
		t.Fatal("missing fault schedule accepted")
	}
	badSched := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badSched, []byte(`{"events": [{"kind": "machine_crash", "atS": 5, "machine": 99}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-faults", badSched}, &buf); err == nil {
		t.Fatal("out-of-range machine accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("x,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", bad}, &buf); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}
