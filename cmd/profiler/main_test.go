package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesProfileDocument(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "profile.json")
	var buf bytes.Buffer
	if err := run([]string{"-machines", "8", "-o", outPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"power model", "cooling model", "set point calibration"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if !strings.Contains(string(data), `"machines"`) {
		t.Fatal("document missing machines")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-machines", "0"}, &buf); err == nil {
		t.Fatal("zero machines accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
