// Command profiler builds the simulated machine room and runs the paper's
// full profiling protocol against it (§IV-A), printing fit quality and
// writing a profile document other tools consume.
//
// Usage:
//
//	profiler [-seed N] [-machines N] [-o profile.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coolopt"
	"coolopt/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "profiler:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profiler", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	machines := fs.Int("machines", 20, "number of machines in the rack")
	outPath := fs.String("o", "", "write the profile document (JSON) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, err := coolopt.NewSystem(coolopt.WithSeed(*seed), coolopt.WithMachines(*machines))
	if err != nil {
		return err
	}
	res := sys.Profiling()
	p := res.Profile

	fmt.Fprintf(out, "profiled %d machines (seed %d)\n", len(p.Machines), *seed)
	fmt.Fprintf(out, "power model:   P = %.2f·L + %.2f W   (fit RMSE %.2f W, R² %.4f)\n",
		p.W1, p.W2, res.PowerFit.RMSE, res.PowerFit.R2)
	fmt.Fprintf(out, "cooling model: P_ac = %.1f·(%.2f − T_ac) W   (fit RMSE %.1f W, R² %.4f)\n",
		p.CoolFactor, p.SetPointC, res.CoolingFit.RMSE, res.CoolingFit.R2)
	fmt.Fprintf(out, "set point calibration: T_SP = T_ac + %.5f·Q + %.3f\n",
		res.Calibration.OffsetPerWatt, res.Calibration.OffsetBase)
	fmt.Fprintf(out, "%-4s%10s%10s%10s%12s%10s\n", "m", "alpha", "beta", "gamma", "K", "fit R²")
	for i, m := range p.Machines {
		fmt.Fprintf(out, "%-4d%10.3f%10.4f%10.2f%12.3f%10.4f\n",
			i, m.Alpha, m.Beta, m.Gamma, p.K(i), res.ThermalFits[i].R2)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := profiling.WriteDocument(f, res.Document()); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
