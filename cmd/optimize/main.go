// Command optimize reads a profile document (from cmd/profiler) and
// prints the energy-optimal plan for a given load: which machines to
// power on, each machine's utilization, the CRAC supply temperature, and
// the set point that commands it.
//
// Usage:
//
//	optimize -profile profile.json -load 0.5 [-no-consolidation]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"coolopt"
	"coolopt/internal/profiling"
	"coolopt/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "optimize:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	profilePath := fs.String("profile", "", "profile document written by cmd/profiler (required)")
	loadFrac := fs.Float64("load", 0.5, "total load as a fraction of cluster capacity (0–1)")
	noCons := fs.Bool("no-consolidation", false, "keep every machine powered on")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *profilePath == "" {
		return fmt.Errorf("-profile is required")
	}
	if *loadFrac <= 0 || *loadFrac > 1 {
		return fmt.Errorf("-load %v outside (0, 1]", *loadFrac)
	}

	f, err := os.Open(*profilePath)
	if err != nil {
		return err
	}
	defer f.Close()
	doc, err := profiling.ReadDocument(f)
	if err != nil {
		return err
	}

	opt, err := coolopt.NewOptimizer(doc.Profile)
	if err != nil {
		return err
	}
	load := *loadFrac * float64(doc.Profile.Size())
	var plan *coolopt.Plan
	if *noCons {
		plan, err = opt.PlanNoConsolidation(load)
	} else {
		plan, err = opt.Plan(load)
	}
	if err != nil {
		return err
	}

	var predictedW units.Watts
	for _, i := range plan.On {
		predictedW += doc.Profile.ServerPower(plan.Loads[i])
	}
	fmt.Fprintf(out, "load: %.2f units (%.0f%% of %d machines)\n", load, *loadFrac*100, doc.Profile.Size())
	fmt.Fprintf(out, "machines on: %d %v\n", len(plan.On), plan.On)
	fmt.Fprintf(out, "supply temperature T_ac: %.2f °C (clamped: %v)\n", plan.TAcC, plan.Clamped)
	fmt.Fprintf(out, "CRAC set point to command it: %.2f °C\n",
		doc.Calibration.SetPointFor(plan.TAcC, predictedW))
	fmt.Fprintf(out, "predicted power: %.1f W\n", doc.Profile.PlanPower(plan))
	fmt.Fprintf(out, "%-4s%10s%14s\n", "m", "load", "pred temp °C")
	for _, i := range plan.On {
		fmt.Fprintf(out, "%-4d%10.3f%14.2f\n", i, plan.Loads[i],
			doc.Profile.CPUTemp(i, plan.Loads[i], plan.TAcC))
	}
	return nil
}
