package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testDoc = `{
  "profile": {
    "w1": 50, "w2": 35, "coolFactor": 70, "setPointC": 30,
    "tMaxC": 58, "tAcMinC": 8, "tAcMaxC": 25,
    "machines": [
      {"alpha": 0.96, "beta": 0.44, "gamma": 1.2},
      {"alpha": 0.93, "beta": 0.45, "gamma": 2.1},
      {"alpha": 0.90, "beta": 0.45, "gamma": 3.0},
      {"alpha": 0.80, "beta": 0.48, "gamma": 6.0}
    ]
  },
  "calibration": {"offsetPerWatt": 0.003, "offsetBase": 0.1}
}`

func writeDoc(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, []byte(testDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsPlan(t *testing.T) {
	path := writeDoc(t)
	var buf bytes.Buffer
	if err := run([]string{"-profile", path, "-load", "0.5"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"machines on:", "supply temperature", "predicted power", "set point"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoConsolidationKeepsAllOn(t *testing.T) {
	path := writeDoc(t)
	var buf bytes.Buffer
	if err := run([]string{"-profile", path, "-load", "0.5", "-no-consolidation"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "machines on: 4") {
		t.Fatalf("expected all 4 machines on:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -profile accepted")
	}
	if err := run([]string{"-profile", "nope.json"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeDoc(t)
	if err := run([]string{"-profile", path, "-load", "2"}, &buf); err == nil {
		t.Fatal("load > 1 accepted")
	}
	if err := run([]string{"-profile", path, "-load", "0"}, &buf); err == nil {
		t.Fatal("zero load accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", bad}, &buf); err == nil {
		t.Fatal("corrupt document accepted")
	}
}
