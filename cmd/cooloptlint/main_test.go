package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI tests drive run() against throwaway modules so the exit-code
// contract (0 clean / 1 findings / 2 broken run) is pinned by test, not
// convention — CI boots on it.

const goMod = "module lintme\n\ngo 1.22\n"

const sentinelSrc = `package lintme

import "io"

func Check(err error) bool {
	return err == io.EOF
}
`

const cleanSrc = `package lintme

import "errors"

var ErrBusy = errors.New("busy")

func Check(err error) bool {
	return errors.Is(err, ErrBusy)
}
`

func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": goMod, "lint.go": sentinelSrc})
	code, stdout, stderr := runLint(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "sentinel error EOF") {
		t.Fatalf("stdout missing the sentinel finding:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Fatalf("stderr missing the finding count:\n%s", stderr)
	}
}

func TestExitCodeClean(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": goMod, "lint.go": cleanSrc})
	code, stdout, stderr := runLint(t, "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run should print nothing, got:\n%s", stdout)
	}
}

func TestExitCodeBrokenSource(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"go.mod":  goMod,
		"lint.go": "package lintme\n\nfunc Broken( {\n",
	})
	code, _, stderr := runLint(t, "-C", dir, "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
}

func TestOnlySkipsOtherAnalyzers(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": goMod, "lint.go": sentinelSrc})
	code, stdout, stderr := runLint(t, "-C", dir, "-only", "goroleak,units", "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (errcontract not selected)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	code, _, _ = runLint(t, "-C", dir, "-skip", "errcontract", "./...")
	if code != 0 {
		t.Fatalf("-skip errcontract: exit code = %d, want 0", code)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": goMod, "lint.go": cleanSrc})
	code, _, stderr := runLint(t, "-C", dir, "-only", "errcontract,nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown analyzer\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Fatalf("stderr should name the unknown analyzer:\n%s", stderr)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": goMod, "lint.go": sentinelSrc})
	baseline := filepath.Join(dir, "baseline.json")

	code, _, stderr := runLint(t, "-C", dir, "-baseline", baseline, "-write-baseline", "./...")
	if code != 0 {
		t.Fatalf("-write-baseline: exit code = %d, want 0\nstderr:\n%s", code, stderr)
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	code, stdout, _ := runLint(t, "-C", dir, "-baseline", baseline, "./...")
	if code != 0 {
		t.Fatalf("baselined run: exit code = %d, want 0\nstdout:\n%s", code, stdout)
	}

	// Without the baseline the finding is back: the file parks it, the
	// suite still sees it.
	code, _, _ = runLint(t, "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("un-baselined run: exit code = %d, want 1", code)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTempModule(t, map[string]string{"go.mod": goMod, "lint.go": sentinelSrc})
	code, stdout, _ := runLint(t, "-C", dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var out struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout)
	}
	if len(out.Findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(out.Findings), stdout)
	}
	f := out.Findings[0]
	if f.Analyzer != "errcontract" || f.File != "lint.go" || f.Line == 0 {
		t.Fatalf("unexpected finding shape: %+v", f)
	}
}

func TestListNamesAllNine(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"clonesafety", "ctxhttp", "determinism", "errcontract", "floatcmp",
		"goroleak", "lockatomic", "snapshotmut", "units",
	} {
		if !strings.Contains(stdout, name) {
			t.Fatalf("-list output missing %q:\n%s", name, stdout)
		}
	}
}
