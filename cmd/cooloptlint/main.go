// Command cooloptlint runs the repo's static-analysis suite over the
// given package patterns (default ./...) and exits non-zero if any
// analyzer reports a finding.
//
// The suite enforces the invariants the paper reproduction depends on:
//
//	determinism  — no wall clock, no global math/rand, no map-order leaks
//	               in //coolopt:deterministic packages
//	units        — no silent cross-unit conversions or raw literals where
//	               units.Celsius/Watts/... are declared
//	clonesafety  — goroutines must not capture live System/Simulator/Room
//	               values without cloning
//	floatcmp     — no exact ==/!= between computed floats outside mathx
//	ctxhttp      — HTTP clients must propagate context and set timeouts
//	lockatomic   — fields touched by sync/atomic are atomic everywhere;
//	               atomic.Pointer/Value installs stay on blessed paths
//	errcontract  — sentinels via errors.Is, causes wrapped with %w, no
//	               dropped error returns in //coolopt:errcontract packages
//	goroleak     — no unstoppable goroutine loops, time.After in loops,
//	               or tickers/timers without Stop
//	snapshotmut  — no writes to state reachable from the frozen
//	               core.Snapshot / core.PodSnapshot
//
// Suppress an individual finding with `//coolopt:ignore <analyzer> reason`
// on the flagged line or the line above it. Pre-existing findings can be
// parked in a committed baseline (-baseline, regenerated with
// -write-baseline) while they are burned down.
//
// Exit codes: 0 — clean; 1 — findings; 2 — load, type-check, or usage
// error. CI distinguishes "the code violates an invariant" (1) from
// "the lint run itself is broken" (2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"coolopt/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cooloptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir           = fs.String("C", ".", "directory to resolve package patterns in")
		list          = fs.Bool("list", false, "list the analyzers in the suite and exit")
		only          = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip          = fs.String("skip", "", "comma-separated analyzers to skip")
		jsonOut       = fs.Bool("json", false, "emit findings as JSON on stdout")
		timing        = fs.Bool("timing", false, "report per-analyzer wall time on stderr")
		workers       = fs.Int("workers", 0, "max packages analyzed in parallel (0 = GOMAXPROCS)")
		baselinePath  = fs.String("baseline", "", "baseline file of tolerated findings (missing file = empty)")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the -baseline file from this run's findings and exit 0")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "cooloptlint: -write-baseline requires -baseline")
		return 2
	}

	suite, unknown := analysis.Select(analysis.Suite(),
		splitNames(*only), splitNames(*skip))
	if len(unknown) > 0 {
		fmt.Fprintf(stderr, "cooloptlint: unknown analyzer(s): %s (see -list)\n", strings.Join(unknown, ", "))
		return 2
	}
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loadStart := time.Now()
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loadTime := time.Since(loadStart)

	runStart := time.Now()
	res, err := analysis.RunTimed(suite, prog.Packages, *workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	runTime := time.Since(runStart)

	root, err := filepath.Abs(*dir)
	if err != nil {
		root = *dir
	}
	if *writeBaseline {
		if err := analysis.WriteBaseline(*baselinePath, root, res.Findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "cooloptlint: wrote %d finding(s) to %s\n", len(res.Findings), *baselinePath)
		return 0
	}

	findings := res.Findings
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		findings = baseline.Filter(findings, root)
	}

	if *timing {
		printTiming(stderr, res.Elapsed, loadTime, runTime, len(prog.Packages))
	}

	if *jsonOut {
		if err := writeJSON(stdout, findings, root); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cooloptlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// splitNames parses a comma-separated analyzer list, tolerating spaces
// and empty segments.
func splitNames(s string) []string {
	var names []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// printTiming reports where the lint run spent its time: the package
// load (go list + type-check, usually dominant) and each analyzer's
// cumulative cost across packages, slowest first.
func printTiming(w io.Writer, elapsed map[string]time.Duration, load, run time.Duration, pkgs int) {
	fmt.Fprintf(w, "cooloptlint: loaded %d package(s) in %v, analyzed in %v\n",
		pkgs, load.Round(time.Millisecond), run.Round(time.Millisecond))
	names := make([]string, 0, len(elapsed))
	for name := range elapsed {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if elapsed[names[i]] != elapsed[names[j]] {
			return elapsed[names[i]] > elapsed[names[j]]
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		fmt.Fprintf(w, "  %-12s %v\n", name, elapsed[name].Round(10*time.Microsecond))
	}
}

// jsonFinding is the machine-readable finding shape (`-json`). File is
// root-relative so output is stable across checkouts.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []analysis.Finding, root string) error {
	out := struct {
		Findings []jsonFinding `json:"findings"`
	}{Findings: []jsonFinding{}}
	for _, f := range findings {
		file := f.Position.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out.Findings = append(out.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     file,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}
