// Command cooloptlint runs the repo's static-analysis suite over the
// given package patterns (default ./...) and exits non-zero if any
// analyzer reports a finding.
//
// The suite enforces the invariants the paper reproduction depends on:
//
//	determinism  — no wall clock, no global math/rand, no map-order leaks
//	               in //coolopt:deterministic packages
//	units        — no silent cross-unit conversions or raw literals where
//	               units.Celsius/Watts/... are declared
//	clonesafety  — goroutines must not capture live System/Simulator/Room
//	               values without cloning
//	floatcmp     — no exact ==/!= between computed floats outside mathx
//	ctxhttp      — HTTP clients must propagate context and set timeouts
//
// Suppress an individual finding with `//coolopt:ignore <analyzer> reason`
// on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"coolopt/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := analysis.Run(suite, prog.Packages)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cooloptlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
