// Command roomd serves a simulated machine room over HTTP — the virtual
// testbed. Room time is virtual: clients drive it with POST /v1/advance,
// so experiments run as fast as the simulator integrates. Pair it with
// cmd/ctrld to profile and control the room remotely.
//
// Usage:
//
//	roomd [-addr :7077] [-seed N] [-machines N]
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"coolopt/internal/room"
	"coolopt/internal/roomapi"
	"coolopt/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roomd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("roomd", flag.ContinueOnError)
	addr := fs.String("addr", ":7077", "listen address")
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	machines := fs.Int("machines", 20, "number of machines in the rack")
	if err := fs.Parse(args); err != nil {
		return err
	}

	handler, err := newHandler(*seed, *machines)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "roomd: serving a %d-machine simulated room on http://%s\n",
		*machines, ln.Addr())
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.Serve(ln)
}

// newHandler builds the simulated room and its API handler.
func newHandler(seed int64, machines int) (http.Handler, error) {
	spec := room.DefaultRackSpec()
	spec.Seed = seed
	spec.N = machines
	rack, err := room.GenRack(spec)
	if err != nil {
		return nil, err
	}
	crac := sim.DefaultCRAC()
	crac.Flow = 0.015 * float64(machines)
	simRoom, err := sim.New(sim.Config{
		Rack:      rack,
		CRAC:      crac,
		SetPointC: sim.DefaultSetPointC,
		Seed:      seed + 1,
		BaseHeatW: sim.DefaultBaseHeatW * float64(machines) / 20,
	})
	if err != nil {
		return nil, err
	}
	return roomapi.NewServer(simRoom)
}
