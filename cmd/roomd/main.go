// Command roomd serves a simulated machine room over HTTP — the virtual
// testbed. Room time is virtual: clients drive it with POST /v1/advance,
// so experiments run as fast as the simulator integrates. Pair it with
// cmd/ctrld to profile and control the room remotely.
//
// A fault schedule (see internal/faults) turns the testbed into a chaos
// room: physical faults corrupt the simulated hardware, and transport
// faults corrupt the HTTP surface itself. Onsets in the schedule are
// room-clock seconds; a fresh roomd starts its clock at zero.
//
// On SIGINT or SIGTERM the server stops accepting connections, drains
// in-flight requests for -drain, and exits cleanly.
//
// Usage:
//
//	roomd [-addr :7077] [-seed N] [-machines N] [-faults schedule.json] [-drain 5s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coolopt/internal/faults"
	"coolopt/internal/room"
	"coolopt/internal/roomapi"
	"coolopt/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "roomd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("roomd", flag.ContinueOnError)
	addr := fs.String("addr", ":7077", "listen address")
	seed := fs.Int64("seed", 1, "seed for rack jitter and sensor noise")
	machines := fs.Int("machines", 20, "number of machines in the rack")
	faultsPath := fs.String("faults", "", "fault schedule JSON (see internal/faults); onsets are room-clock seconds")
	drain := fs.Duration("drain", 5*time.Second, "in-flight request drain budget on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sched *faults.Schedule
	if *faultsPath != "" {
		var err error
		sched, err = loadSchedule(*faultsPath, *machines)
		if err != nil {
			return err
		}
	}
	handler, err := newHandler(*seed, *machines, sched)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "roomd: serving a %d-machine simulated room on http://%s\n",
		*machines, ln.Addr())
	if sched != nil {
		fmt.Fprintf(out, "roomd: injecting %d scheduled faults\n", len(sched.Events))
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "roomd: signal received, draining for up to %s…\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close() // drain budget exhausted: cut remaining connections
		<-served
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "roomd: drained, bye")
	return nil
}

// loadSchedule reads and validates a fault schedule against the rack size.
func loadSchedule(path string, machines int) (*faults.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sched, err := faults.ParseJSON(f)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(machines); err != nil {
		return nil, err
	}
	return sched, nil
}

// newHandler builds the simulated room and its API handler; a non-nil
// schedule wraps the room in the fault injector and the handler in the
// transport-fault middleware.
func newHandler(seed int64, machines int, sched *faults.Schedule) (http.Handler, error) {
	spec := room.DefaultRackSpec()
	spec.Seed = seed
	spec.N = machines
	rack, err := room.GenRack(spec)
	if err != nil {
		return nil, err
	}
	crac := sim.DefaultCRAC()
	crac.Flow = 0.015 * float64(machines)
	simRoom, err := sim.New(sim.Config{
		Rack:      rack,
		CRAC:      crac,
		SetPointC: sim.DefaultSetPointC,
		Seed:      seed + 1,
		BaseHeatW: sim.DefaultBaseHeatW * float64(machines) / 20,
	})
	if err != nil {
		return nil, err
	}
	if sched == nil {
		return roomapi.NewServer(simRoom)
	}
	froom, err := faults.NewRoom(simRoom, sched)
	if err != nil {
		return nil, err
	}
	srv, err := roomapi.NewServer(froom)
	if err != nil {
		return nil, err
	}
	return faults.Middleware(srv, sched, time.Sleep), nil
}
