package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"coolopt/internal/roomapi"
)

func TestNewHandlerServesRoom(t *testing.T) {
	h, err := newHandler(1, 8, nil)
	if err != nil {
		t.Fatalf("newHandler: %v", err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/room")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info roomapi.RoomInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Machines != 8 {
		t.Fatalf("machines = %d, want 8", info.Machines)
	}
}

func TestNewHandlerValidation(t *testing.T) {
	if _, err := newHandler(1, 0, nil); err == nil {
		t.Fatal("zero machines accepted")
	}
}

func TestNewHandlerWithFaults(t *testing.T) {
	sched, err := loadSchedule(writeSchedule(t,
		`{"events": [{"kind": "net_500", "fromRequest": 1, "requests": 2}]}`), 8)
	if err != nil {
		t.Fatalf("loadSchedule: %v", err)
	}
	h, err := newHandler(1, 8, sched)
	if err != nil {
		t.Fatalf("newHandler: %v", err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// The first two requests hit the injected blackout, the third works.
	for i, want := range []int{http.StatusInternalServerError, http.StatusInternalServerError, http.StatusOK} {
		resp, err := ts.Client().Get(ts.URL + "/v1/room")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i+1, resp.StatusCode, want)
		}
	}
}

func TestLoadScheduleRejectsOutOfRangeMachine(t *testing.T) {
	path := writeSchedule(t,
		`{"events": [{"kind": "machine_crash", "atS": 10, "machine": 99}]}`)
	if _, err := loadSchedule(path, 8); err == nil {
		t.Fatal("machine index beyond the rack accepted")
	}
}

func TestRunFlagError(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if err := run(ctx, []string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(ctx, []string{"-machines", "0"}, &buf); err == nil {
		t.Fatal("zero machines accepted")
	}
	if err := run(ctx, []string{"-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Fatal("bad address accepted")
	}
	if err := run(ctx, []string{"-faults", "missing.json"}, &buf); err == nil {
		t.Fatal("missing fault schedule accepted")
	}
}

func TestRunShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-machines", "4"}, out)
	}()

	// Wait for the server to come up, then hit it once to prove it serves.
	var url string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if s := out.String(); strings.Contains(s, "http://") {
			line := s[strings.Index(s, "http://"):]
			url = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if url == "" {
		t.Fatalf("server never announced its address:\n%s", out.String())
	}
	resp, err := http.Get(url + "/v1/room")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()

	cancel() // stands in for SIGINT/SIGTERM via signal.NotifyContext
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancellation")
	}
	if s := out.String(); !strings.Contains(s, "drained") {
		t.Fatalf("output missing drain confirmation:\n%s", s)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for watching run's output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func writeSchedule(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "faults.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
