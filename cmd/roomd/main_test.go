package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"coolopt/internal/roomapi"
)

func TestNewHandlerServesRoom(t *testing.T) {
	h, err := newHandler(1, 8)
	if err != nil {
		t.Fatalf("newHandler: %v", err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/room")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info roomapi.RoomInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Machines != 8 {
		t.Fatalf("machines = %d, want 8", info.Machines)
	}
}

func TestNewHandlerValidation(t *testing.T) {
	if _, err := newHandler(1, 0); err == nil {
		t.Fatal("zero machines accepted")
	}
}

func TestRunFlagError(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-machines", "0"}, &buf); err == nil {
		t.Fatal("zero machines accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, &buf); err == nil {
		t.Fatal("bad address accepted")
	}
}
